(* Minimal JSON: deterministic printer + strict recursive-descent parser.

   Kept deliberately small — just what the telemetry sinks and their
   tests need. Printing is byte-deterministic (golden files depend on
   it); parsing is strict enough to reject the malformed output a buggy
   exporter would produce. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_to_string f =
  if Float.is_nan f || Float.is_infinite f then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    (* ensure the token re-parses as a float, not an int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s ->
      Buffer.add_char b '"';
      escape_to b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_to b k;
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parsing ---------------------------------------------------------- *)

exception Bad of int * string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_add b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
               let cp = hex4 () in
               let cp =
                 (* surrogate pair *)
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo < 0xDC00 || lo > 0xDFFF then
                       fail "invalid low surrogate";
                     0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   end
                   else fail "lone high surrogate"
                 end
                 else cp
               in
               utf8_add b cp
           | _ -> fail "unknown escape");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some ('0' .. '9') -> true | _ -> false
    in
    if not (is_digit ()) then fail "malformed number";
    (* RFC 8259: the integer part is [0] or [1-9][0-9]* — no leading zeros. *)
    if peek () = Some '0' then advance ()
    else
      while is_digit () do
        advance ()
      done;
    if is_digit () then fail "leading zero in number";
    let floaty = ref false in
    if peek () = Some '.' then begin
      floaty := true;
      advance ();
      if not (is_digit ()) then fail "malformed fraction";
      while is_digit () do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        floaty := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (is_digit ()) then fail "malformed exponent";
        while is_digit () do
          advance ()
        done
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !floaty then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "json parse error at offset %d: %s" at msg)

(* --- human tables ----------------------------------------------------- *)

(* One codec, two faces: the CLI builds its report data as Json values,
   prints them for machines with [to_string] and for humans with these
   aligned renderers — so the two outputs can never drift apart. *)

let scalar = function
  | Null -> "-"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.4g" f
  | String s -> s
  | (List _ | Obj _) as v -> to_string v

let pp_kv_table ?(indent = 2) fields =
  let pad = String.make indent ' ' in
  let w =
    List.fold_left (fun w (k, _) -> max w (String.length k)) 0 fields
  in
  String.concat ""
    (List.map
       (fun (k, v) -> Printf.sprintf "%s%-*s  %s\n" pad w k (scalar v))
       fields)

let pp_rows ?(indent = 2) rows =
  match rows with
  | [] -> ""
  | first :: _ ->
      let pad = String.make indent ' ' in
      let cols = List.map fst first in
      let cell row c = match List.assoc_opt c row with
        | Some v -> scalar v
        | None -> "-"
      in
      let widths =
        List.map
          (fun c ->
            List.fold_left
              (fun w row -> max w (String.length (cell row c)))
              (String.length c) rows)
          cols
      in
      let line f =
        pad
        ^ String.concat "  "
            (List.map2 (fun c w -> Printf.sprintf "%-*s" w (f c)) cols widths)
        ^ "\n"
      in
      line (fun c -> c) ^ String.concat "" (List.map (fun r -> line (cell r)) rows)

(* --- queries ---------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | String x, String y -> x = y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      (* Order-insensitive multiset match: duplicate keys are representable
         in the AST, so each field of [xs] must consume a distinct
         structurally-equal field of [ys]. *)
      let rec take (k, v) acc = function
        | [] -> None
        | (k', v') :: rest when String.equal k k' && equal v v' ->
            Some (List.rev_append acc rest)
        | p :: rest -> take (k, v) (p :: acc) rest
      in
      let rec match_all xs ys =
        match (xs, ys) with
        | [], [] -> true
        | [], _ :: _ -> false
        | f :: rest, ys -> (
            match take f [] ys with
            | Some ys' -> match_all rest ys'
            | None -> false)
      in
      List.length xs = List.length ys && match_all xs ys
  | _ -> false
