(** Log-scale histograms over non-negative integers.

    Values land in power-of-two buckets ([0], [1], [2..3], [4..7], ...),
    so a histogram is a fixed 64-slot array regardless of range — cheap
    enough to keep per metric on a hot path, precise enough for the
    quantile summaries the telemetry sinks report. Merging is pointwise,
    which makes per-domain histograms combinable after a parallel search.

    Algebraic laws (property-tested in suite_obs): [merge] is associative
    and commutative with [create ()] as identity; [add] increases [count]
    by one and [sum] by the (clamped) value; [quantile] is monotone in
    its argument and bounded by [max_value]. *)

type t

val create : unit -> t
val copy : t -> t

val add : t -> int -> unit
(** Record a value; negatives are clamped to 0. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** 0 when empty. *)

val mean : t -> float
(** 0.0 when empty (exact: tracked as [sum]/[count], not from buckets). *)

val merge : t -> t -> t
(** Fresh histogram holding both argument's populations. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0,1]: an upper estimate of the q-th
    population quantile (the top of the bucket the quantile lands in,
    clamped to [max_value]); 0 when empty. Monotone in [q]. *)

val iter_buckets : (lo:int -> hi:int -> count:int -> unit) -> t -> unit
(** Non-empty buckets in increasing value order. *)

val equal : t -> t -> bool

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Codec used by the NDJSON sink; [of_json (to_json t)] re-creates [t]
    exactly (property-tested). *)

val pp : Format.formatter -> t -> unit
