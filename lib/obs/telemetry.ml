(* The telemetry hub. See telemetry.mli for the overhead contract. *)

type counter = { cname : string; mutable v : int }

type t = {
  sinks : Sink.t list;
  clock : unit -> int;
  pid : int;
  mutable counters : counter list;  (* registration order, reversed *)
  mutable closed : bool;
}

let null =
  { sinks = []; clock = (fun () -> 0); pid = 0; counters = []; closed = false }

let default_clock () =
  let t0 = Unix.gettimeofday () in
  fun () -> int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)

let create ?clock ?(pid = 0) ~sinks () =
  let clock = match clock with Some c -> c | None -> default_clock () in
  { sinks; clock; pid; counters = []; closed = false }

let manual_clock () =
  let t = ref 0 in
  ((fun () -> !t), fun d -> t := !t + d)

let enabled t = t.sinks <> []
let now_us t = t.clock ()

let emit_at t ~ts ~tid payload =
  if t.sinks <> [] then begin
    let e = { Event.ts_us = ts; pid = t.pid; tid; payload } in
    List.iter (fun (s : Sink.t) -> s.Sink.emit e) t.sinks
  end

let emit t ~tid payload =
  if t.sinks <> [] then emit_at t ~ts:(t.clock ()) ~tid payload

(* --- counters ---------------------------------------------------------- *)

let counter t name =
  match List.find_opt (fun c -> c.cname = name) t.counters with
  | Some c -> c
  | None ->
      let c = { cname = name; v = 0 } in
      t.counters <- c :: t.counters;
      c

let incr c = c.v <- c.v + 1
let add c n = c.v <- c.v + n
let set c n = c.v <- n
let value c = c.v

let emit_counter ?(tid = 0) t c = emit t ~tid (Event.Counter (c.cname, c.v))

let flush_counters ?(tid = 0) t =
  if t.sinks <> [] then
    List.iter
      (fun c -> emit t ~tid (Event.Counter (c.cname, c.v)))
      (List.rev t.counters)

(* --- events ------------------------------------------------------------ *)

let gauge ?(tid = 0) t name v = emit t ~tid (Event.Gauge (name, v))

let instant ?(tid = 0) ?(args = []) t name =
  emit t ~tid (Event.Instant (name, args))

let hist ?(tid = 0) t name h =
  if t.sinks <> [] then emit t ~tid (Event.Hist (name, Histogram.copy h))

let span ?(tid = 0) ?(args = []) t name f =
  if t.sinks = [] then f ()
  else begin
    emit t ~tid (Event.Span_begin (name, args));
    Fun.protect ~finally:(fun () -> emit t ~tid (Event.Span_end name)) f
  end

let span_at ?(tid = 0) ?(args = []) t ~ts0 ~ts1 name =
  if t.sinks <> [] then begin
    emit_at t ~ts:ts0 ~tid (Event.Span_begin (name, args));
    emit_at t ~ts:(max ts0 ts1) ~tid (Event.Span_end name)
  end

let flush t = List.iter (fun (s : Sink.t) -> s.Sink.flush ()) t.sinks

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush_counters t;
    List.iter
      (fun (s : Sink.t) ->
        s.Sink.flush ();
        s.Sink.close ())
      t.sinks
  end
