(* Online Knuth/Chen probe estimator. See the .mli for the math; the
   implementation notes here are about the routing scheme and staying
   off the search's hot path.

   The frame stack mirrors the DFS recursion. Frame [d] holds the
   node's not-yet-consumed child slots and still-unrouted probes packed
   in one int ([slots lsl 31 lor alive] — both fit 31 bits by the
   clamps in [create]/[enter]), and two floats: the node's own reach
   share (the probability a probe reaches it; its reciprocal is the
   estimator weight) and its undistributed mass. Packing halves the
   array traffic of the per-node hooks, and the bounds are checked once
   per [enter] ([ensure]), so the frame accesses compile to raw loads —
   this module runs three hooks per search node, so single-digit
   nanoseconds matter. Once [alive] hits 0 on a path — which happens
   within a few levels for realistic probe counts — enter/leaf/leave
   perform no PRNG draws and no divisions, so the estimator's cost
   concentrates near the root.

   Routing. A child that ENTERS at a moment when its parent has [r]
   unconsumed slots and undistributed mass [m] receives the share
   [m / r] of the parent's mass, and a balanced probe allotment with
   the matching expectation [alive / r]. A child that is abandoned
   without entering ([leaf]: asleep, dedup-pruned, delegated, or a
   raising move) consumes a slot but NO probes and NO mass — its
   implicit share stays with the parent, flowing to later entered
   children (and whatever is left when the node closes retires as
   explored mass). Both the share sequence and the entered/leaf
   pattern are fixed by the (deterministic) search, so every entered
   node's reach share is a deterministic quantity, and
   E[estimate] = Σ_entered E[alive] / (probes · share) = #entered nodes
   exactly — unbiasedness does not depend on the routing being
   uniform, only on E[routed | alive, r] = alive / r, which holds for
   the balanced draw below. Compared with routing probes into every
   declared slot (where each pruned slot kills its allotment), this
   keeps the flow on the surviving tree and collapses the notorious
   heavy tail of tree-size probing under heavy dedup pruning. *)

type cfg = { probes : int; seed : int }

let default_cfg = { probes = 64; seed = 0 }

type t = {
  probes : int;
  mutable rng : int64;
  (* frames, indexed by depth; [ensure] keeps both arrays long enough
     for the current depth, licensing the unsafe accesses below *)
  mutable sa : int array; (* slots lsl 31 lor alive *)
  mutable fm : float array; (* 2d: reach share; 2d+1: undistributed mass *)
  mutable depth : int;
  mutable sum : float; (* sum of alive/share over entered nodes *)
  mutable done_mass : float; (* retired mass, across roots *)
  mutable nroots : int;
}

(* splitmix64: tiny, deterministic, good enough for probe routing. *)
let mix s =
  let open Int64 in
  let z = add s 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (z, logxor z (shift_right_logical z 31))

(* Uniform-ish draw in [0, n): modulo bias is O(n / 2^62), invisible at
   the branching factors a model checker sees. Masked to 62 bits so the
   value stays non-negative in OCaml's 63-bit native int. *)
let rand_int t n =
  let s, x = mix t.rng in
  t.rng <- s;
  Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL) mod n

let create ?(cfg = default_cfg) () =
  let cap = 64 in
  {
    (* clamp into the 31-bit alive field of the packed frame *)
    probes = min (max 1 cfg.probes) 0x3FFFFFFF;
    rng = Int64.of_int (cfg.seed lxor 0x5851F42D);
    sa = Array.make cap 0;
    fm = Array.make (2 * cap) 0.;
    depth = 0;
    sum = 0.;
    done_mass = 0.;
    nroots = 0;
  }

let ensure t d =
  if d >= Array.length t.sa then begin
    let cap = max (2 * Array.length t.sa) (d + 1) in
    let sa = Array.make cap 0 and fm = Array.make (2 * cap) 0. in
    Array.blit t.sa 0 sa 0 (Array.length t.sa);
    Array.blit t.fm 0 fm 0 (Array.length t.fm);
    t.sa <- sa;
    t.fm <- fm
  end

(* Reciprocal table: the mass share is [m / r] with [r] a child-slot
   count, almost always tiny — a table lookup and a multiply beat a
   float division on the per-enter path. The ~1-ulp rounding between
   [m *. inv r] and true division only nudges the deterministic share
   partition (both the weight and the routed expectation use the same
   stored share), it does not bias the estimate. *)
let inv_tab =
  Array.init 64 (fun i -> if i = 0 then 0. else 1. /. float_of_int i)

let[@inline] inv r =
  if r < 64 then Array.unsafe_get inv_tab r else 1. /. float_of_int r

(* Balanced (stratified) routing: the entering child takes
   [floor(a/r)] probes plus one more with probability [(a mod r)/r] —
   expectation exactly [a/r], with the flow split almost
   deterministically instead of by independent coin flips per probe
   (the difference between an estimate that concentrates and one that
   rides a heavy tail). The last slot ([r] = 1) takes everything:
   conservation is exact. *)
let route t a r =
  if r = 1 then a
  else
    let base = a / r and rem = a mod r in
    if rem = 0 then base
    else if rand_int t r < rem then base + 1
    else base

let enter t ~children =
  let d = t.depth in
  ensure t d;
  let a, share =
    if d = 0 then begin
      t.nroots <- t.nroots + 1;
      (t.probes, 1.0)
    end
    else begin
      let p = d - 1 in
      let v = Array.unsafe_get t.sa p in
      let r = v lsr 31 in
      if r <= 0 then (0, 0.)
        (* defensive: a node consuming more slots than it declared gets
           no probes and no mass (cannot happen with a correct client,
           but an estimator must never crash a search) *)
      else begin
        let alive = v land 0x7FFFFFFF in
        let x = if alive = 0 then 0 else route t alive r in
        (* one slot consumed, [x] probes routed away *)
        Array.unsafe_set t.sa p (v - (1 lsl 31) - x);
        let b = 2 * p in
        let m = Array.unsafe_get t.fm (b + 1) in
        let share = m *. inv r in
        Array.unsafe_set t.fm (b + 1) (m -. share);
        (x, share)
      end
    end
  in
  Array.unsafe_set t.sa d ((min children 0x3FFFFFFF lsl 31) lor a);
  let b = 2 * d in
  Array.unsafe_set t.fm b share;
  Array.unsafe_set t.fm (b + 1) share;
  if a > 0 && share > 0. then t.sum <- t.sum +. (float_of_int a /. share);
  t.depth <- d + 1

let leaf t =
  if t.depth > 0 then begin
    let d = t.depth - 1 in
    (* a pruned / abandoned child: consumes a slot, keeps its implicit
       mass and probe share with the parent *)
    let v = Array.unsafe_get t.sa d in
    if v lsr 31 > 0 then Array.unsafe_set t.sa d (v - (1 lsl 31))
  end

let leave t =
  if t.depth > 0 then begin
    let d = t.depth - 1 in
    (* whatever mass was never handed to an entered child is now fully
       explored: the node itself (zero-slot leaves retire everything)
       plus every pruned slot's implicit share *)
    t.done_mass <- t.done_mass +. Array.unsafe_get t.fm ((2 * d) + 1);
    t.depth <- d
  end

let estimate t = t.sum /. float_of_int t.probes

let progress t =
  if t.nroots = 0 then 0.
  else
    let p = t.done_mass /. float_of_int t.nroots in
    if p < 0. then 0. else if p > 1. then 1. else p

let roots t = t.nroots
let probes t = t.probes
