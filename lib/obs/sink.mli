(** Pluggable telemetry sinks.

    A sink is three closures; the {!Telemetry} hub fans every event out
    to all attached sinks. Sinks are single-consumer and not thread-safe:
    in the parallel explorer only the coordinating domain emits (workers
    hand their measurements back to it), so no locking is needed. *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
      (** Write any buffered epilogue. Does not close the underlying
          channel — the opener owns it. *)
}

val null : t

val memory : unit -> t * (unit -> Event.t list)
(** In-process collector (tests): the second component returns the
    events received so far, oldest first. *)

val ndjson : out_channel -> t
(** Streams one JSON object per event, newline-delimited, as encoded by
    {!Event.to_ndjson_line}. *)

val console : ?oc:out_channel -> unit -> t
(** Pretty reporter: accumulates final counter values, span durations
    (by name: count / total / max) and histogram snapshots, and prints a
    table on [close]. Default channel: [stderr], so it composes with
    commands that print results on stdout. *)

val progress : ?oc:out_channel -> ?tty:bool -> unit -> t
(** Live one-line search progress. Consumes the explorer's heartbeat
    telemetry — the [explore.nodes] counter, the [explore.nodes_per_sec]
    / [explore.progress] / [explore.eta_s] / [explore.est_total] gauges
    — and repaints on each [explore.heartbeat] instant. With [tty]
    (default) the line is rewritten in place with ['\r'] and the final
    [close] emits the newline; without, each heartbeat appends a plain
    line (log-friendly). Progress/ETA fields appear only when the
    estimator is running. Default channel: [stdout]. *)

val chrome_event :
  name:string ->
  cat:string ->
  ph:string ->
  ts:int ->
  pid:int ->
  tid:int ->
  (string * Json.t) list ->
  Json.t
(** One trace event in the Chrome trace-event JSON shape, fields in a
    fixed order (name, cat, ph, ts, pid, tid, extras) so exports are
    byte-stable. Shared with {!Execution.Chrome}. *)

val chrome_trace : out_channel -> t
(** Chrome trace-event exporter ([chrome://tracing] / Perfetto "JSON
    array" format). Spans become ["B"]/["E"] duration events, counters
    and gauges ["C"] counter tracks, instants ["i"], histograms a ["C"]
    track of quantile series. The file is written incrementally — one
    trace event per line inside the array — and terminated on [close]
    (unbalanced span begins are closed at the last seen timestamp). *)
