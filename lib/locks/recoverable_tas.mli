(** Recoverable test-and-set lock: the lock word carries the owner's
    stamp ([p+1]), and the recovery section releases it if the owner died
    before its release write committed. [naive_family] is the broken
    control whose recovery frees the lock unconditionally — the model
    checker finds its exclusion violation under a single crash fault. *)

val make : n:int -> Lock_intf.t
val make_naive : n:int -> Lock_intf.t
val family : Lock_intf.family
val naive_family : Lock_intf.family
