(** Interface implemented by every lock in the zoo.

    A lock declares its shared variables into a {!Tsim.Layout.t} (choosing
    DSM ownership for spin cells) and provides entry and exit-section
    programs. Per-passage scratch state lives in OCaml arrays inside the
    lock's closure: the entry program stores into them as it executes and
    the exit program — constructed only when the process reaches its CS —
    reads them back; replay re-executes entries before exits, so this is
    deterministic. *)

open Tsim
open Tsim.Ids

type t = {
  name : string;
  uses_rmw : bool;  (** uses comparison primitives (CAS/FAA/SWAP)? *)
  one_time : bool;  (** supports a single passage per process only *)
  adaptive : bool;  (** RMR complexity a function of contention? *)
  pure : bool;
      (** programs are effect-free (no per-passage scratch arrays), so
          the compile-ahead engine may cache their continuations
          ({!Tsim.Config.t.pure_programs}); locks that pass scratch from
          entry to exit through mutable arrays must declare [false] *)
  layout : Layout.t;
  entry : Pid.t -> unit Prog.t;
  exit_section : Pid.t -> unit Prog.t;
  recovery : (Pid.t -> unit Prog.t) option;
      (** recovery section run before the entry section on the first
          passage after a crash ({!Tsim.Machine.crash}); [None] means the
          lock has no crash story and restarts cold *)
  abort : (Pid.t -> unit Prog.t) option;
      (** cleanup section run when an acquisition attempt is cancelled at
          a declared wait point ({!Tsim.Prog.abortable},
          {!Tsim.Machine.abort}). Must be bounded and leave the lock
          reusable; [None] means acquisitions cannot be aborted. *)
}

(** A lock family: instantiate shared state for [n] processes. *)
type family = { family_name : string; instantiate : n:int -> t }

val make_family : string -> (n:int -> t) -> family
