(* Lamport's fast mutual exclusion algorithm (1987), fenced for TSO.

   Read/write only. A solo process takes the fast path: seven shared
   accesses and two fences, independent of n. Under contention the slow
   path scans all announce flags, costing Θ(n). The algorithm is the
   ancestor of splitter-based adaptive locks: its contention-free passage
   is O(1), which makes it the zoo's "fast-path" row — adaptive in the
   solo case only, and with constant fences, again consistent with the
   tradeoff (its RMR complexity is not bounded by any f(k) under
   contention, so it is not f-adaptive). *)

open Tsim
open Tsim.Ids
open Prog

type ctx = { x : Var.t; y : Var.t; b : Var.t array }

let none = 0  (* encode pid p as p+1; 0 = none *)

let make ~n : Lock_intf.t =
  let layout = Layout.create () in
  let ctx =
    {
      x = Layout.var layout ~init:none "x";
      y = Layout.var layout ~init:none "y";
      b = Layout.array layout ~owner_fn:(fun i -> Some i) ~init:0 "b" n;
    }
  in
  let entry p =
    let me = p + 1 in
    let rec start () =
      let* () = write ctx.b.(p) 1 in
      let* () = write ctx.x me in
      let* () = fence in
      let* y = read ctx.y in
      if y <> none then
        let* () = write ctx.b.(p) 0 in
        let* () = fence in
        let* _ = spin_until ctx.y (fun v -> v = none) in
        start ()
      else
        let* () = write ctx.y me in
        let* () = fence in
        let* x = read ctx.x in
        if x = me then unit (* fast path *)
        else
          let* () = write ctx.b.(p) 0 in
          let* () = fence in
          let rec await_all q =
            if q >= n then unit
            else
              let* _ = spin_until ctx.b.(q) (fun v -> v = 0) in
              await_all (q + 1)
          in
          let* () = await_all 0 in
          let* y = read ctx.y in
          if y = me then unit (* slow path acquired *)
          else
            let* _ = spin_until ctx.y (fun v -> v = none) in
            start ()
    in
    start ()
  in
  let exit_section p =
    let* () = write ctx.y none in
    let* () = write ctx.b.(p) 0 in
    fence
  in
  {
    Lock_intf.name = "fastpath";
    uses_rmw = false;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "fastpath" (fun ~n -> make ~n)
