(** Abortable test-and-set lock with exponential backoff: the entry
    section retries an optimistic CAS with an exponentially growing
    polite wait between failures, and that wait is a declared abortable
    window ({!Tsim.Prog.retry_backoff}). The abort cleanup releases the
    lock word only when it carries the aborter's own stamp.

    [buggy_family] is the deliberately broken control whose cleanup
    frees the lock unconditionally; the model checker refutes it under
    one injected abort. *)

val make : n:int -> Lock_intf.t
val make_buggy : n:int -> Lock_intf.t
val family : Lock_intf.family
val buggy_family : Lock_intf.family
