(* Peterson's filter lock (n-process generalization).

   n-1 levels; at each level a process announces itself, volunteers as
   the level's victim, publishes (one fence per level), and waits until
   either no other process is at its level or beyond, or it is no longer
   the victim. Read/write only; Θ(n) fences and Θ(n²) reads per
   contended passage — the expensive classic that bounds the zoo from
   above. *)

open Tsim
open Tsim.Ids
open Prog

type ctx = { level : Var.t array; victim : Var.t array }

let make ~n : Lock_intf.t =
  let layout = Layout.create () in
  let ctx =
    {
      level = Layout.array layout ~owner_fn:(fun i -> Some i) ~init:0 "level" n;
      victim = Layout.array layout ~init:(-1) "victim" n;
    }
  in
  let entry p =
    let rec levels l =
      if l >= n then unit
      else
        let* () = write ctx.level.(p) l in
        let* () = write ctx.victim.(l) p in
        let* () = fence in
        (* wait while exists q != p with level[q] >= l and victim[l] = p *)
        let rec await fuel =
          if fuel <= 0 then raise (Prog.Spin_exhausted ctx.victim.(l))
          else
            let rec scan q =
              if q >= n then return false
              else if q = p then scan (q + 1)
              else
                let* lq = read ctx.level.(q) in
                if lq >= l then return true else scan (q + 1)
            in
            let* someone_ahead = scan 0 in
            if not someone_ahead then unit
            else
              let* v = read ctx.victim.(l) in
              if v <> p then unit else await (fuel - 1)
        in
        let* () = await !Tsim.Prog.default_spin_fuel in
        levels (l + 1)
    in
    levels 1
  in
  let exit_section p =
    let* () = write ctx.level.(p) 0 in
    fence
  in
  {
    Lock_intf.name = "filter";
    uses_rmw = false;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "filter" (fun ~n -> make ~n)
