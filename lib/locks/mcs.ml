(* MCS queue lock (Mellor-Crummey & Scott).

   Each process owns a queue node consisting of [locked.(p)] and
   [next.(p)], both DSM-local to [p] (a successor performs one remote
   write into its predecessor's [next]). Spinning is on the process's own
   [locked] word, so the lock is local-spin: O(1) RMRs per passage in both
   DSM and CC. The swap on [tail] and the CAS in release are the two
   fences of a contended passage.

   On TSO the successor's [locked.(p) := 1] and [next.(pred) := p] writes
   must be published before the spin, hence the explicit fence. *)

open Tsim
open Tsim.Ids
open Prog

let nil = -1

type ctx = {
  tail : Var.t;
  next : Var.t array;  (* next.(p): successor of p, or nil *)
  locked : Var.t array;  (* locked.(p): 1 while p must wait *)
}

let make ~n : Lock_intf.t =
  let layout = Layout.create () in
  let ctx =
    {
      tail = Layout.var layout ~init:nil "tail";
      next = Layout.array layout ~owner_fn:(fun i -> Some i) ~init:nil "next" n;
      locked = Layout.array layout ~owner_fn:(fun i -> Some i) ~init:0 "locked" n;
    }
  in
  let entry p =
    let* () = write ctx.next.(p) nil in
    let* pred = swap ctx.tail p in
    if pred = nil then unit
    else
      let* () = write ctx.locked.(p) 1 in
      let* () = write ctx.next.(pred) p in
      let* () = fence in
      let* _ = spin_until ctx.locked.(p) (fun x -> x = 0) in
      unit
  in
  let exit_section p =
    let* succ = read ctx.next.(p) in
    if succ <> nil then
      let* () = write ctx.locked.(succ) 0 in
      fence
    else
      let* ok = cas ctx.tail ~expected:p ~desired:nil in
      if ok then unit
      else
        (* a successor is in the middle of linking in; wait for it *)
        let* succ = spin_until ctx.next.(p) (fun x -> x <> nil) in
        let* () = write ctx.locked.(succ) 0 in
        fence
  in
  {
    Lock_intf.name = "mcs";
    uses_rmw = true;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "mcs" (fun ~n -> make ~n)
