(* Burns–Lamport one-bit mutual exclusion for two processes.

   Uses a single shared bit per process — the space-optimal read/write
   mutex. Asymmetric: p0 has priority; p1 defers whenever p0's bit is
   set. Deadlock-free but not starvation-free for p1 (as in the
   original); the simulator's schedulers always let p0 exit, so tests
   terminate. *)

open Tsim
open Prog

let make ~n : Lock_intf.t =
  if n <> 2 then invalid_arg "Burns_lamport.make: exactly 2 processes";
  let layout = Layout.create () in
  let bit = Layout.array layout ~init:0 "bit" 2 in
  let entry p =
    if p = 0 then
      (* high priority: set bit, wait for the rival to retreat *)
      let* () = write bit.(0) 1 in
      let* () = fence in
      let* _ = spin_until bit.(1) (fun x -> x = 0) in
      unit
    else
      let rec attempt fuel =
        if fuel <= 0 then raise (Prog.Spin_exhausted bit.(0))
        else
          let* rival = read bit.(0) in
          if rival = 1 then attempt (fuel - 1)
          else
            let* () = write bit.(1) 1 in
            let* () = fence in
            let* rival = read bit.(0) in
            if rival = 0 then unit
            else
              (* retreat and retry *)
              let* () = write bit.(1) 0 in
              let* () = fence in
              let* _ = spin_until bit.(0) (fun x -> x = 0) in
              attempt (fuel - 1)
      in
      attempt !Prog.default_spin_fuel
  in
  let exit_section p =
    let* () = write bit.(p) 0 in
    fence
  in
  {
    Lock_intf.name = "burns-lamport";
    uses_rmw = false;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "burns-lamport" (fun ~n -> make ~n)
