(* Anderson's array-based queue lock.

   A fetch-and-increment assigns each acquirer a slot in a circular array
   of [n] flags; the acquirer spins on its own slot and the releaser sets
   the next slot. One FAA (one fence) on entry, one published write (one
   fence) on exit; O(1) RMRs in CC since each process spins on a distinct
   array cell. *)

open Tsim
open Tsim.Ids
open Prog

type ctx = {
  tail : Var.t;
  slots : Var.t array;
  my_slot : int array;
}

let make ~n : Lock_intf.t =
  let layout = Layout.create () in
  let slots = Layout.array layout ~init:0 "slot" n in
  let ctx = { tail = Layout.var layout "tail"; slots; my_slot = Array.make n 0 } in
  let entry p =
    let* t = faa ctx.tail 1 in
    ctx.my_slot.(p) <- t;
    let s = t mod n in
    (* Slots carry a generation count: ticket t spins on slot t mod n until
       it has been opened floor(t/n)+1 times. Ticket 0 finds its slot open
       by construction. *)
    if t = 0 then unit
    else
      let gen = (t - s) / n + 1 in
      let* _ = spin_until ctx.slots.(s) (fun x -> x >= gen) in
      unit
  in
  let exit_section p =
    let t = ctx.my_slot.(p) in
    let nxt = (t + 1) mod n in
    let gen = (t + 1 - nxt) / n + 1 in
    let* () = write ctx.slots.(nxt) gen in
    fence
  in
  {
    Lock_intf.name = "anderson";
    uses_rmw = true;
    pure = false;  (* per-passage scratch array *)
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "anderson" (fun ~n -> make ~n)
