(** The lock zoo: every algorithm the evaluation sweeps over. *)

val all : Lock_intf.family list

val read_write_only : Lock_intf.family list
(** Locks that use no comparison primitives. *)

val multi_passage : Lock_intf.family list
(** Locks supporting repeated passages (excludes one-time locks). *)

val two_process : Lock_intf.family list
(** Two-process-only classics (Dekker, Burns-Lamport). *)

val recoverable : Lock_intf.family list
(** Locks with a recovery section, for crash-injecting exploration. *)

val abortable : Lock_intf.family list
(** Locks with an abort cleanup section, for abort-injecting exploration
    ([verify --max-aborts]). *)

val find : string -> Lock_intf.family option
