(* Dekker's algorithm (the first mutual exclusion algorithm), fenced for
   TSO. Two processes only; read/write only.

   The fence after the initial flag write is essential on TSO: without it
   both processes can read the rival's flag as 0 while their own writes
   sit in the store buffers (the store-buffering anomaly) and enter
   together — the model checker exhibits the schedule (experiment E12,
   suite_mcheck). *)

open Tsim
open Tsim.Ids
open Prog

type ctx = { flag : Var.t array; turn : Var.t }

let make ~n : Lock_intf.t =
  if n <> 2 then invalid_arg "Dekker.make: exactly 2 processes";
  let layout = Layout.create () in
  let ctx =
    { flag = Layout.array layout ~init:0 "flag" 2;
      turn = Layout.var layout ~init:0 "turn" }
  in
  let entry p =
    let other = 1 - p in
    let* () = write ctx.flag.(p) 1 in
    let* () = fence in
    let rec contend fuel =
      if fuel <= 0 then raise (Prog.Spin_exhausted ctx.turn)
      else
        let* rival = read ctx.flag.(other) in
        if rival = 0 then unit
        else
          let* t = read ctx.turn in
          if t <> other then contend (fuel - 1)
          else
            (* back off: clear own flag until the turn flips *)
            let* () = write ctx.flag.(p) 0 in
            let* () = fence in
            let* _ = spin_until ctx.turn (fun t -> t = p) in
            let* () = write ctx.flag.(p) 1 in
            let* () = fence in
            contend (fuel - 1)
    in
    contend !Prog.default_spin_fuel
  in
  let exit_section p =
    let* () = write ctx.turn (1 - p) in
    let* () = write ctx.flag.(p) 0 in
    fence
  in
  {
    Lock_intf.name = "dekker";
    uses_rmw = false;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "dekker" (fun ~n -> make ~n)
