(* Announce-list adaptive lock (one-time, FIFO by announcement).

   The reproduction's *adaptive target* for the lower-bound adversary
   (experiment E3). A process pushes itself onto a CAS-built announce list
   and then waits, in announcement order, for every earlier announcer to
   exit. With total contention k a passage costs O(k) RMRs (push + walk +
   one cache refill per predecessor exit in CC), so the lock is f-adaptive
   with linear f — exactly the family Corollary 2 applies to.

   Its fence complexity is where the paper's tradeoff bites: each CAS
   attempt drains the store buffer (one fence), and under an adversarial
   schedule the k announcers' CASes collide so that some process retries
   Θ(k) times — the forced-fence growth the adversary exhibits. *)

open Tsim
open Tsim.Ids
open Prog

let nil = -1

type ctx = {
  head : Var.t;
  nxt : Var.t array;  (* nxt.(p): predecessor-in-announcement of p *)
  exited : Var.t array;  (* exited.(p) = 1 once p completed its passage *)
}

let make ~n : Lock_intf.t =
  let layout = Layout.create () in
  let ctx =
    {
      head = Layout.var layout ~init:nil "head";
      nxt = Layout.array layout ~owner_fn:(fun i -> Some i) ~init:nil "nxt" n;
      exited = Layout.array layout ~owner_fn:(fun i -> Some i) ~init:0 "exited" n;
    }
  in
  let entry p =
    (* push self at the head of the announce list *)
    let rec push () =
      let* h = read ctx.head in
      let* () = write ctx.nxt.(p) h in
      let* ok = cas ctx.head ~expected:h ~desired:p in
      if ok then return h else push ()
    in
    let* pred = push () in
    (* wait for every earlier announcer, in list order *)
    let rec await q =
      if q = nil then unit
      else
        let* _ = spin_until ctx.exited.(q) (fun x -> x = 1) in
        let* q' = read ctx.nxt.(q) in
        await q'
    in
    await pred
  in
  let exit_section p =
    let* () = write ctx.exited.(p) 1 in
    fence
  in
  {
    Lock_intf.name = "adaptive-list";
    uses_rmw = true;
    pure = true;
    one_time = true;
    adaptive = true;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "adaptive-list" (fun ~n -> make ~n)
