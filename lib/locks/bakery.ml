(* Lamport's bakery algorithm, fenced for TSO.

   Pure read/write mutual exclusion. A process announces it is choosing,
   publishes (fence), picks a number one larger than any it read, publishes
   (fence), then defers to every process with a smaller (number, id) pair.

   The per-passage complexity is Θ(n) reads and O(1) fences regardless of
   contention: bakery is the canonical *non-adaptive* read/write lock, and
   its constant fence count is consistent with the paper's tradeoff (only
   adaptive algorithms are forced to grow fences). *)

open Tsim
open Tsim.Ids
open Prog

type ctx = { choosing : Var.t array; number : Var.t array }

(* [pso_safe] fences between the number write and the choosing reset:
   bakery's doorway relies on the ticket being visible no later than the
   choosing flag clears — TSO's FIFO order provides this, PSO does not
   (experiment E13). *)
let make ?(pso_safe = false) ~n () : Lock_intf.t =
  let layout = Layout.create () in
  let ctx =
    {
      choosing = Layout.array layout ~owner_fn:(fun i -> Some i) "choosing" n;
      number = Layout.array layout ~owner_fn:(fun i -> Some i) "number" n;
    }
  in
  let entry p =
    let* () = write ctx.choosing.(p) 1 in
    let* () = fence in
    (* scan for the maximum ticket *)
    let rec scan q m =
      if q >= n then return m
      else
        let* x = read ctx.number.(q) in
        scan (q + 1) (max m x)
    in
    let* m = scan 0 0 in
    let* () = write ctx.number.(p) (m + 1) in
    let* () = if pso_safe then fence else unit in
    let* () = write ctx.choosing.(p) 0 in
    let* () = fence in
    (* defer to smaller (number, id) pairs *)
    let rec await q =
      if q >= n then unit
      else if q = p then await (q + 1)
      else
        let* _ = spin_until ctx.choosing.(q) (fun x -> x = 0) in
        let* _ =
          spin_until ctx.number.(q) (fun x ->
              x = 0 || x > m + 1 || (x = m + 1 && q > p))
        in
        await (q + 1)
    in
    await 0
  in
  let exit_section p =
    let* () = write ctx.number.(p) 0 in
    fence
  in
  {
    Lock_intf.name = (if pso_safe then "bakery-pso" else "bakery");
    uses_rmw = false;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "bakery" (fun ~n -> make ~n ())

let family_pso =
  Lock_intf.make_family "bakery-pso" (fun ~n -> make ~pso_safe:true ~n ())
