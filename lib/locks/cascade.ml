(* Cascade lock: unbounded-contention adaptive read/write mutual
   exclusion (one-time) — the full Kim-Anderson shape.

   Renaming grids of geometrically growing side d0, 2·d0, 4·d0, ... are
   tried in order; with contention k a process stops in the first grid of
   side ≥ ~2k after O(k) splitter steps. The grid's claimed cell is a
   leaf of that stage's Peterson tournament, and the O(log n) stage
   winners (plus a pid-indexed slow-path tournament as a safety net)
   arbitrate in one final tournament over the stages.

   Complexity of a passage at total contention k:
     RMRs   O(k)  renaming  +  O(log k)  stage tree  +  O(log log n)  arbitration
     fences O(k)  (two per splitter)     +  O(log k)  +  O(log log n)

   The Θ(log log n) arbitration term is not an accident: Corollary 2
   proves any linear-adaptive implementation must execute Ω(log log N)
   fences in some passage, so this upper bound has matching shape — the
   cascade is the tradeoff's constructive face. *)

open Tsim
open Prog

type claim = Fast of int * int  (* stage, name *) | Slow

let make ?(d0 = 4) ~n () : Lock_intf.t =
  let layout = Layout.create () in
  (* stage sides: d0, 2 d0, ... until one side covers any contention *)
  let sides =
    let rec go d acc = if d >= 2 * n then List.rev (d :: acc) else go (2 * d) (d :: acc) in
    go d0 []
  in
  let m = List.length sides in
  let grids =
    List.map (fun side -> Splitter.make_grid layout ~side) sides
  in
  let stage_trees =
    List.mapi
      (fun i side ->
        Peterson_kit.tournament_over layout
          (Printf.sprintf "stage%d" i)
          ~leaves:(side * side))
      sides
  in
  let slow_tree = Peterson_kit.tournament_over layout "slow" ~leaves:n in
  (* arbitration over the m stage winners + the slow-path winner *)
  let arb_entry, arb_exit =
    Peterson_kit.tournament_over layout "arb" ~leaves:(m + 1)
  in
  let claims = Array.make n Slow in
  let entry p =
    let rec try_stage i =
      if i >= m then
        (* safety net; unreachable when the last side covers n *)
        let* () = (fst slow_tree) p in
        arb_entry m
      else
        let* name = Splitter.rename (List.nth grids i) p in
        match name with
        | Some nm ->
            claims.(p) <- Fast (i, nm);
            let* () = (fst (List.nth stage_trees i)) nm in
            arb_entry i
        | None -> try_stage (i + 1)
    in
    try_stage 0
  in
  let exit_section p =
    match claims.(p) with
    | Fast (i, nm) ->
        let* () = arb_exit i in
        (snd (List.nth stage_trees i)) nm
    | Slow ->
        let* () = arb_exit m in
        (snd slow_tree) p
  in
  {
    Lock_intf.name = "cascade";
    uses_rmw = false;
    pure = false;  (* per-passage scratch array *)
    one_time = true;
    adaptive = true;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "cascade" (fun ~n -> make ~n ())
