(** Abortable array-based queue lock (after Katzan–Morrison's abortable
    CLH): FAA assigns slots, waiters spin abortably on their own grant
    word, abort marks the slot dead (0 -> 2 by CAS) and the release scan
    chases the grant past dead slots. Cleanup and exit are bounded by
    the number of aborts. Slots are not recycled; drawing a ticket past
    [capacity] raises {!Tsim.Prog.Spin_exhausted}. *)

val make : ?capacity:int -> unit -> n:int -> Lock_intf.t
val family : Lock_intf.family
