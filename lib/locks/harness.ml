(* Turn a lock into a runnable machine configuration, plus the measurement
   helpers used by the evaluation experiments (E6) and the tests. *)

open Tsim

let config_of_lock ?(model = Config.Cc_wb) ?(ordering = Config.Tso)
    ?(max_passages = 1) ?(rmw_drains = true) ?(check_exclusion = true)
    ?(crash_semantics = Config.Drop_buffer) (lock : Lock_intf.t) ~n =
  if lock.Lock_intf.one_time && max_passages > 1 then
    invalid_arg
      (Printf.sprintf "%s is a one-time lock; max_passages must be 1"
         lock.Lock_intf.name);
  Config.make ~model ~ordering ~max_passages ~rmw_drains ~check_exclusion
    ~crash_semantics ?recovery:lock.Lock_intf.recovery
    ?abort_section:lock.Lock_intf.abort ~pure_programs:lock.Lock_intf.pure ~n
    ~layout:lock.Lock_intf.layout ~entry:lock.Lock_intf.entry
    ~exit_section:lock.Lock_intf.exit_section ()

let machine_of_lock ?model ?ordering ?max_passages ?rmw_drains
    ?check_exclusion ?crash_semantics (lock : Lock_intf.t) ~n =
  Machine.create
    (config_of_lock ?model ?ordering ?max_passages ?rmw_drains
       ?check_exclusion ?crash_semantics lock ~n)

(* Aggregate per-passage statistics after a run. *)
type run_stats = {
  lock_name : string;
  model : Config.mem_model;
  n : int;
  passages : int;
  total_rmrs : int;
  total_fences : int;
  total_criticals : int;
  max_rmrs_per_passage : int;
  max_fences_per_passage : int;
  avg_rmrs_per_passage : float;
  avg_fences_per_passage : float;
  max_interval_contention : int;
  max_point_contention : int;
  cs_entries : int;
  exclusion_ok : bool;
  completed : bool;  (* every process finished all its passages *)
}

let collect_stats ~lock_name m ~completed ~exclusion_ok =
  let cfg = Machine.config m in
  let passages = ref 0 in
  let rmrs = ref 0 and fences = ref 0 and criticals = ref 0 in
  let max_r = ref 0 and max_f = ref 0 in
  let max_iv = ref 0 and max_pt = ref 0 in
  for p = 0 to cfg.Config.n - 1 do
    passages := !passages + Machine.passages m p;
    Vec.iter
      (fun (s : Machine.passage_stats) ->
        rmrs := !rmrs + s.Machine.p_rmrs;
        fences := !fences + s.Machine.p_fences;
        criticals := !criticals + s.Machine.p_criticals;
        max_r := max !max_r s.Machine.p_rmrs;
        max_f := max !max_f s.Machine.p_fences;
        max_iv := max !max_iv s.Machine.p_interval;
        max_pt := max !max_pt s.Machine.p_point)
      (Machine.passage_log m p)
  done;
  let fpass = float_of_int (max 1 !passages) in
  {
    lock_name;
    model = cfg.Config.model;
    n = cfg.Config.n;
    passages = !passages;
    total_rmrs = !rmrs;
    total_fences = !fences;
    total_criticals = !criticals;
    max_rmrs_per_passage = !max_r;
    max_fences_per_passage = !max_f;
    avg_rmrs_per_passage = float_of_int !rmrs /. fpass;
    avg_fences_per_passage = float_of_int !fences /. fpass;
    max_interval_contention = !max_iv;
    max_point_contention = !max_pt;
    cs_entries = Machine.cs_entries m;
    exclusion_ok;
    completed;
  }

(* Run [k] of the [n] processes to completion under a schedule; the other
   n-k stay in their non-critical sections, so [k] is the total contention
   of the resulting execution. *)
type schedule = Rr | Rand of int (* seed *)

let run_contended ?(model = Config.Cc_wb) ?(max_passages = 1)
    ?(schedule = Rr) (lock : Lock_intf.t) ~n ~k =
  if k > n then invalid_arg "run_contended: k > n";
  let cfg = config_of_lock ~model ~max_passages lock ~n in
  let m = Machine.create cfg in
  let exclusion_ok = ref true in
  let completed = ref true in
  (try
     match schedule with
     | Rr ->
         let live = ref true in
         let steps = ref 0 in
         let budget = 50_000_000 in
         while !live && !steps < budget do
           live := false;
           for p = 0 to k - 1 do
             if Machine.passages m p < max_passages then begin
               live := true;
               (match Machine.pending m p with
               | Machine.P_done -> ()
               | _ ->
                   ignore (Machine.step m p);
                   incr steps)
             end
           done
         done;
         if !steps >= budget then completed := false
     | Rand seed ->
         let rng = Rng.create seed in
         let budget = ref 50_000_000 in
         let unfinished () =
           List.filter
             (fun p -> Machine.passages m p < max_passages)
             (List.init k Fun.id)
         in
         let rec loop () =
           match unfinished () with
           | [] -> ()
           | pids when !budget > 0 ->
               let p = Rng.pick rng pids in
               (match Machine.pending m p with
               | Machine.P_done -> ()
               | _ ->
                   ignore (Machine.step m p);
                   decr budget);
               loop ()
           | _ -> completed := false
         in
         loop ()
   with
  | Machine.Exclusion_violation _ -> exclusion_ok := false
  | Prog.Spin_exhausted _ -> completed := false);
  let stats =
    collect_stats ~lock_name:lock.Lock_intf.name m ~completed:!completed
      ~exclusion_ok:!exclusion_ok
  in
  (m, stats)
