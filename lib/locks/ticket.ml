(* Ticket lock (fetch-and-increment based).

   The non-adaptive constant-fence baseline of the reproduction: each
   passage performs exactly one atomic FAA (one implicit fence) in the
   entry section and one fence in the exit section, and O(1) RMRs in the
   CC models (the spin on [now_serving] hits the cache until the holder
   publishes the next ticket). It stands in for the Attiya–Hendler–Levy
   O(1)-fence construction as the non-adaptive baseline of experiment E3;
   see DESIGN.md §6. *)

open Tsim
open Tsim.Ids
open Prog

type ctx = {
  next_ticket : Var.t;
  now_serving : Var.t;
  my_ticket : int array;  (* per-process scratch: ticket drawn in entry *)
}

let make ~n : Lock_intf.t =
  let layout = Layout.create () in
  let ctx =
    {
      next_ticket = Layout.var layout "next_ticket";
      now_serving = Layout.var layout "now_serving";
      my_ticket = Array.make n 0;
    }
  in
  let entry p =
    let* t = faa ctx.next_ticket 1 in
    ctx.my_ticket.(p) <- t;
    let* _ = spin_until ctx.now_serving (fun s -> s = t) in
    unit
  in
  let exit_section p =
    let t = ctx.my_ticket.(p) in
    let* () = write ctx.now_serving (t + 1) in
    fence
  in
  {
    Lock_intf.name = "ticket";
    uses_rmw = true;
    pure = false;  (* per-passage scratch array *)
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "ticket" (fun ~n -> make ~n)
