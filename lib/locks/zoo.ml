(* The lock zoo: every algorithm the evaluation sweeps over. *)

let all : Lock_intf.family list =
  [
    Ticket.family;
    Tas.family;
    Mcs.family;
    Clh.family;
    Anderson.family;
    Bakery.family;
    Filter.family;
    Tournament.family;
    Fastpath.family;
    Adaptive_list.family;
    Adaptive_tree.family;
    Cascade.family;
  ]

let read_write_only : Lock_intf.family list =
  [
    Bakery.family;
    Filter.family;
    Tournament.family;
    Fastpath.family;
    Adaptive_tree.family;
    Cascade.family;
  ]

let multi_passage : Lock_intf.family list =
  [
    Ticket.family;
    Tas.family;
    Mcs.family;
    Clh.family;
    Anderson.family;
    Bakery.family;
    Filter.family;
    Tournament.family;
    Fastpath.family;
  ]

(* Two-process-only classics; exercised by the model checker rather than
   the n-process sweeps. *)
let two_process : Lock_intf.family list =
  [ Dekker.family; Burns_lamport.family ]

(* Locks with a recovery section; exercised by the crash-injecting model
   checker rather than the failure-free sweeps. *)
let recoverable : Lock_intf.family list =
  [ Recoverable_tas.family; Recoverable_tas.naive_family ]

(* Locks with an abort cleanup section; exercised by the abort-injecting
   model checker (verify --max-aborts). *)
let abortable : Lock_intf.family list =
  [ Abortable_tas.family; Abortable_tas.buggy_family; Abortable_queue.family ]

let find name =
  List.find_opt
    (fun f -> String.equal f.Lock_intf.family_name name)
    (all @ two_process @ recoverable @ abortable)
