(* Abortable array-based queue lock, after the Katzan–Morrison treatment
   of abortable CLH: an aborting waiter marks its queue node dead instead
   of unlinking it, and the grant chases past dead nodes.

   A fetch-and-increment on [tail] hands each acquirer a slot in the
   [grant] array; slot t spins — abortably — until grant[t] = 1. Slot 0
   is implicitly granted (its owner drew the first ticket and proceeds
   without waiting, like Anderson's ticket 0).

   Grant words travel 0 -> {1, 2}: 0 is waiting, 1 is granted, 2 is
   aborted, and both transitions are CASes so the race between a releaser
   granting slot t and its waiter aborting has exactly one winner:

   - exit scans upward from the owner's successor, CASing each grant word
     0 -> 1; a failed CAS means that waiter aborted (the word holds 2),
     so move to the next slot. Pre-granting a slot nobody has drawn yet
     is fine — its future occupant finds the grant already posted.
   - abort cleanup CASes its own grant word 0 -> 2. If that CAS fails the
     grant already arrived: the aborter briefly owns the lock and hands
     it on by running the same upward scan from its successor.

   Both scans stop at the first non-aborted slot, so cleanup and exit are
   bounded by the number of aborts injected. Slots are not recycled: the
   array has a fixed capacity and drawing a ticket past the end raises
   [Spin_exhausted], surfacing as a typed livelock rather than an index
   error. Model-checking configurations (small n, a passage or two, a
   bounded abort budget) stay far below the default capacity.

   The slot drawn in the entry section travels to the exit and cleanup
   sections through a per-process scratch array, so the lock is impure:
   the compile-ahead engine falls back to the interpreter for it. *)

open Tsim
open Tsim.Ids
open Prog

type ctx = {
  tail : Var.t;
  grant : Var.t array;
  my_slot : int array;
  capacity : int;
}

let make ?(capacity = 32) () ~n : Lock_intf.t =
  let layout = Layout.create () in
  let ctx =
    {
      tail = Layout.var layout "tail";
      grant = Layout.array layout ~init:0 "grant" capacity;
      my_slot = Array.make n 0;
      capacity;
    }
  in
  (* grant the first non-aborted slot at or above s; exit and abort
     hand-off share this *)
  let rec grant_from s =
    if s >= ctx.capacity then raise (Prog.Spin_exhausted ctx.tail)
    else
      let* ok = cas ctx.grant.(s) ~expected:0 ~desired:1 in
      if ok then unit else grant_from (s + 1)
  in
  let entry p =
    let* t = faa ctx.tail 1 in
    if t >= ctx.capacity then raise (Prog.Spin_exhausted ctx.tail)
    else begin
      ctx.my_slot.(p) <- t;
      if t = 0 then unit
      else
        let* _ = abortable_spin_until ctx.grant.(t) (fun g -> g = 1) in
        unit
    end
  in
  let exit_section p = grant_from (ctx.my_slot.(p) + 1) in
  let abort p =
    let t = ctx.my_slot.(p) in
    let* ok = cas ctx.grant.(t) ~expected:0 ~desired:2 in
    if ok then unit else grant_from (t + 1)
  in
  {
    Lock_intf.name = "abortable-queue";
    uses_rmw = true;
    pure = false;  (* per-passage scratch slot *)
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = Some abort;
  }

let family =
  Lock_intf.make_family "abortable-queue" (fun ~n -> make () ~n)
