(* Test-and-test-and-set lock.

   The simplest CAS-based lock: spin reading until the lock looks free,
   then attempt a CAS. Not local-spin in DSM (every spin read of the
   remote lock word is an RMR) and unbounded fences under contention
   (every CAS attempt drains the buffer) — a useful worst-case row in the
   evaluation table. *)

open Tsim
open Prog

let make ~n : Lock_intf.t =
  ignore n;
  let layout = Layout.create () in
  let lock_word = Layout.var layout "lock" in
  let rec acquire () =
    let* _ = spin_until lock_word (fun x -> x = 0) in
    let* ok = cas lock_word ~expected:0 ~desired:1 in
    if ok then unit else acquire ()
  in
  let entry _p = acquire () in
  let exit_section _p =
    let* () = write lock_word 0 in
    fence
  in
  {
    Lock_intf.name = "tas";
    uses_rmw = true;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "tas" (fun ~n -> make ~n)
