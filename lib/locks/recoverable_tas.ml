(* Recoverable test-and-set lock (recoverable mutual exclusion).

   The lock word holds 0 when free and p+1 when owned by process p, so a
   process waking from a crash can tell whether it died holding the lock.
   The recovery section — run by the harness before the entry section on
   the first passage after a crash — reads the word and, if it still
   carries its own stamp, releases it with a fenced write. This repairs
   the canonical lost-release crash: the exit section's release write sits
   in the TSO buffer, the process crashes under [Drop_buffer], and the
   lock word is left stamped by a dead owner forever.

   [naive_family] is the deliberately broken control: its recovery writes
   0 unconditionally, clobbering a live owner's stamp, so a crashed
   process can free somebody else's lock and walk into an occupied
   critical section. The model checker distinguishes the two under
   [~max_crashes:1]. *)

open Tsim
open Prog

let make_with ~name ~recovery ~n : Lock_intf.t =
  ignore n;
  let layout = Layout.create () in
  let lock_word = Layout.var layout "lock" in
  let rec acquire p =
    let* _ = spin_until lock_word (fun x -> x = 0) in
    let* ok = cas lock_word ~expected:0 ~desired:(p + 1) in
    if ok then unit else acquire p
  in
  let entry p = acquire p in
  let exit_section _p =
    let* () = write lock_word 0 in
    fence
  in
  {
    Lock_intf.name;
    uses_rmw = true;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = Some (recovery lock_word);
    abort = None;
  }

let make ~n =
  make_with ~n ~name:"recoverable-tas" ~recovery:(fun lock_word p ->
      let* v = read lock_word in
      if v = p + 1 then
        (* died between acquiring and the release commit: release *)
        let* () = write lock_word 0 in
        fence
      else unit)

let make_naive ~n =
  make_with ~n ~name:"recoverable-tas-naive" ~recovery:(fun lock_word _p ->
      (* wrong: frees the lock even when a live process owns it *)
      let* () = write lock_word 0 in
      fence)

let family = Lock_intf.make_family "recoverable-tas" (fun ~n -> make ~n)

let naive_family =
  Lock_intf.make_family "recoverable-tas-naive" (fun ~n -> make_naive ~n)
