(* Bounded-adaptive read/write lock (one-time): Moir-Anderson renaming
   fast path + tournament slow path + 2-process arbitration.

   The shape of Kim-Anderson's adaptive mutex, reduced to one renaming
   stage (their full construction cascades these; DESIGN.md §6):

   - fast path: rename through a splitter grid of side [d0]; a claimed
     cell is a unique name, and the process competes in a Peterson
     tournament over the grid's d0² cells. With contention k ≲ d0/2 every
     contender stays on this path, costing O(k + log d0) reads/writes —
     independent of n.
   - slow path: a process that falls off the grid (contention too high)
     competes in the ordinary n-leaf tournament, costing O(log n).
   - arbitration: the two path winners run one more Peterson node.

   Exclusion is compositional: each tournament admits one winner at a
   time and the final node admits one of the two. The lock is read/write
   only, and adaptive-for-bounded-contention: solo passages cost O(1)
   (a lone process stops at cell (0,0) immediately). *)

open Tsim
open Prog

type path_state = { mutable name : int option }

let make ?(d0 = 4) ~n () : Lock_intf.t =
  let layout = Layout.create () in
  let grid = Splitter.make_grid layout ~side:d0 in
  let fast_entry, fast_exit =
    Peterson_kit.tournament_over layout "fast" ~leaves:(d0 * d0)
  in
  let slow_entry, slow_exit = Peterson_kit.tournament_over layout "slow" ~leaves:n in
  let final_acquire, final_release = Peterson_kit.peterson_node layout "final" in
  let states = Array.init n (fun _ -> { name = None }) in
  let entry p =
    let* name = Splitter.rename grid p in
    states.(p).name <- name;
    match name with
    | Some nm ->
        let* () = fast_entry nm in
        final_acquire 0
    | None ->
        let* () = slow_entry p in
        final_acquire 1
  in
  let exit_section p =
    match states.(p).name with
    | Some nm ->
        let* () = final_release 0 in
        fast_exit nm
    | None ->
        let* () = final_release 1 in
        slow_exit p
  in
  {
    Lock_intf.name = "adaptive-tree";
    uses_rmw = false;
    pure = false;  (* per-passage scratch array *)
    one_time = true;  (* splitters are single-use *)
    adaptive = true;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "adaptive-tree" (fun ~n -> make ~n ())
