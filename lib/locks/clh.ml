(* CLH queue lock.

   Each acquirer appends a node to an implicit queue by swapping [tail]
   and spins on its *predecessor's* node flag; release clears the owner's
   node and recycles the predecessor's node for the next passage (the
   classic CLH node-donation scheme, realized here with an OCaml-side
   scratch index per process).

   One swap (one fence) to enqueue and one fence to release; in the CC
   models a passage is O(1) RMRs (the spin hits the cache until the
   predecessor commits); unlike MCS the spin target rotates, so CLH is
   not DSM-local-spin. *)

open Tsim
open Tsim.Ids
open Prog

type ctx = {
  tail : Var.t;  (* holds a node index *)
  locked : Var.t array;  (* one flag per node; n+1 nodes *)
  my_node : int array;  (* scratch: current node of p *)
  my_pred : int array;  (* scratch: predecessor node claimed in entry *)
}

let make ~n : Lock_intf.t =
  let layout = Layout.create () in
  let ctx =
    {
      (* node n is the initial dummy, unlocked *)
      tail = Layout.var layout ~init:n "tail";
      locked = Layout.array layout ~init:0 "locked" (n + 1);
      my_node = Array.init n Fun.id;
      my_pred = Array.make n 0;
    }
  in
  let entry p =
    let nd = ctx.my_node.(p) in
    let* () = write ctx.locked.(nd) 1 in
    let* pred = swap ctx.tail nd in
    ctx.my_pred.(p) <- pred;
    let* _ = spin_until ctx.locked.(pred) (fun x -> x = 0) in
    unit
  in
  let exit_section p =
    let nd = ctx.my_node.(p) in
    ctx.my_node.(p) <- ctx.my_pred.(p);
    let* () = write ctx.locked.(nd) 0 in
    fence
  in
  {
    Lock_intf.name = "clh";
    uses_rmw = true;
    pure = false;  (* per-passage scratch array *)
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "clh" (fun ~n -> make ~n)
