(** Running locks on the simulator: configuration plumbing and the
    measurement helpers behind the evaluation experiments (E6) and the
    test suites. *)

open Tsim

val config_of_lock :
  ?model:Config.mem_model ->
  ?ordering:Config.ordering ->
  ?max_passages:int ->
  ?rmw_drains:bool ->
  ?check_exclusion:bool ->
  ?crash_semantics:Config.crash_semantics ->
  Lock_intf.t ->
  n:int ->
  Config.t
(** The lock's recovery section (if any) is wired into the configuration,
    so crash-injecting exploration runs it before re-entries. The
    [crash_semantics] default is {!Config.Drop_buffer}.
    @raise Invalid_argument for multi-passage runs of one-time locks. *)

val machine_of_lock :
  ?model:Config.mem_model ->
  ?ordering:Config.ordering ->
  ?max_passages:int ->
  ?rmw_drains:bool ->
  ?check_exclusion:bool ->
  ?crash_semantics:Config.crash_semantics ->
  Lock_intf.t ->
  n:int ->
  Machine.t

(** Aggregate statistics of a run. *)
type run_stats = {
  lock_name : string;
  model : Config.mem_model;
  n : int;
  passages : int;
  total_rmrs : int;
  total_fences : int;
  total_criticals : int;
  max_rmrs_per_passage : int;
  max_fences_per_passage : int;
  avg_rmrs_per_passage : float;
  avg_fences_per_passage : float;
  max_interval_contention : int;
  max_point_contention : int;
  cs_entries : int;
  exclusion_ok : bool;
  completed : bool;
}

val collect_stats :
  lock_name:string -> Machine.t -> completed:bool -> exclusion_ok:bool
  -> run_stats

type schedule = Rr | Rand of int  (** round robin, or seeded random *)

val run_contended :
  ?model:Config.mem_model ->
  ?max_passages:int ->
  ?schedule:schedule ->
  Lock_intf.t ->
  n:int ->
  k:int ->
  Machine.t * run_stats
(** Run [k] of the [n] processes to completion (the rest stay in their
    NCS), so [k] is the run's total contention. Exclusion violations and
    spin exhaustion are reported in the stats rather than raised. *)
