(* Abortable test-and-set lock with exponential backoff.

   The entry section is a retry/backoff loop (Prog.retry_backoff): an
   optimistic CAS attempt, and on failure a polite wait that re-reads the
   lock word an exponentially growing number of times. The polite wait is
   a declared abortable window — the DSL raises the abortable-waiting
   marker around it — so the scheduler may cancel the acquisition there
   and only there, never between a CAS and its outcome. The lock word
   carries the owner's stamp (p+1, 0 when free) so cleanup can tell whose
   lock it is.

   The abort cleanup is bounded and conservative: re-read the lock word
   and release it only if it carries the aborter's own stamp. Because the
   marker is down across the CAS itself an aborted process can never
   actually hold the lock, so the conditional release never fires — it is
   defence in depth, keeping the cleanup correct even if the entry
   section later grows abortable windows that span an acquisition.

   [buggy_family] is the deliberately broken control: its cleanup writes
   0 unconditionally, freeing whatever process currently holds the lock.
   The model checker refutes it under [~max_aborts:1]: p0 acquires, p1
   fails its CAS and parks in the backoff window, p1 is aborted and the
   cleanup frees p0's held lock, p1 re-enters and both processes sit in
   the critical section. *)

open Tsim
open Prog

let make_with ~name ~abort ~n : Lock_intf.t =
  ignore n;
  let layout = Layout.create () in
  let lock_word = Layout.var layout "lock" in
  let entry p =
    retry_backoff lock_word (cas lock_word ~expected:0 ~desired:(p + 1))
  in
  let exit_section _p =
    let* () = write lock_word 0 in
    fence
  in
  {
    Lock_intf.name;
    uses_rmw = true;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = Some (abort lock_word);
  }

let make ~n =
  make_with ~n ~name:"abortable-tas" ~abort:(fun lock_word p ->
      let* v = read lock_word in
      if v = p + 1 then
        (* own stamp: release before walking away *)
        let* () = write lock_word 0 in
        fence
      else unit)

let make_buggy ~n =
  make_with ~n ~name:"abortable-tas-buggy" ~abort:(fun lock_word _p ->
      (* wrong: frees the lock even when another process owns it *)
      let* () = write lock_word 0 in
      fence)

let family = Lock_intf.make_family "abortable-tas" (fun ~n -> make ~n)

let buggy_family =
  Lock_intf.make_family "abortable-tas-buggy" (fun ~n -> make_buggy ~n)
