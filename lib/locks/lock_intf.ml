(* Interface implemented by every lock in the zoo.

   A lock declares its shared variables into a [Layout.t] (choosing DSM
   ownership for variables a process spins on) and provides entry- and
   exit-section programs per process. Per-passage scratch state (a ticket
   number, a tree position) lives in OCaml arrays inside the context: the
   entry program stores into them as it executes and the exit program —
   constructed only when the process reaches its CS — reads them back.
   This is deterministic under replay because replay re-executes the entry
   section before constructing the exit section. *)

open Tsim
open Tsim.Ids

type t = {
  name : string;
  uses_rmw : bool;  (* uses comparison primitives (CAS/FAA/SWAP)? *)
  one_time : bool;  (* only supports a single passage per process *)
  adaptive : bool;  (* RMR complexity a function of contention? *)
  pure : bool;
      (* programs are effect-free (no per-passage scratch arrays): the
         compile-ahead engine may cache and reuse their continuations
         (Config.pure_programs). Locks that smuggle a ticket/slot from
         entry to exit through a mutable array must say false. *)
  layout : Layout.t;
  entry : Pid.t -> unit Prog.t;
  exit_section : Pid.t -> unit Prog.t;
  recovery : (Pid.t -> unit Prog.t) option;
      (* recovery section run before the entry section on the first
         passage after a crash (recoverable mutual exclusion); None means
         the lock has no crash story and restarts cold *)
  abort : (Pid.t -> unit Prog.t) option;
      (* cleanup section run when an acquisition attempt is cancelled at a
         declared wait point (Prog.abortable / Machine.abort). Must be
         bounded (no unbounded spins) and leave the lock reusable: other
         processes keep making progress and the aborter may re-enter
         later. None means acquisitions cannot be aborted. *)
}

(* A lock family: given n, instantiate shared state for n processes. *)
type family = { family_name : string; instantiate : n:int -> t }

let make_family name instantiate = { family_name = name; instantiate }
