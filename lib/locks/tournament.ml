(* Peterson arbitration-tree (tournament) lock — read/write only.

   Processes climb a binary tree; at each node the two subtree winners run
   Peterson's 2-process algorithm (flag/turn per node, one fence per
   node). A passage costs O(log n) reads/writes and O(log n) fences, and
   O(log n) RMRs in the CC models (the node spin re-reads hit the cache
   until the rival commits). This is the zoo's non-adaptive read/write
   O(log n) baseline, standing in for the Yang–Anderson tournament, whose
   single-spin-cell signalling protocol is out of scope here (its DSM
   local-spin property is the only difference relevant to the paper's
   metrics; the fence and CC-RMR profiles match).

   On TSO, Peterson requires the flag/turn writes to be published before
   reading the rival's flag — the fence below; this is the classic
   store-buffering pitfall the simulator's litmus example demonstrates. *)

open Tsim
open Tsim.Ids
open Prog

let next_pow2 n =
  let rec go x = if x >= n then x else go (2 * x) in
  go 1

type ctx = {
  flags : Var.t array array;  (* flags.(node).(side) *)
  turn : Var.t array;  (* turn.(node): side whose rival may go first *)
  path : (int * int) list array;  (* per process: (node, side), leaf→root *)
}

(* [pso_safe] inserts a fence between the flag and turn writes: Peterson
   relies on the flag being visible no later than the turn, which TSO's
   FIFO buffers give for free and PSO does not — without this fence the
   PSO adversary commits turn first and two processes pass the same node
   (see suite_pso / experiment E13). The extra fence doubles the
   per-node fence count: a concrete instance of the PSO fence tax the
   Discussion section quantifies. *)
let make ?(pso_safe = false) ~n () : Lock_intf.t =
  let l = max 2 (next_pow2 n) in
  let layout = Layout.create () in
  let flags = Layout.matrix layout ~init:0 "flag" l 2 in
  let turn = Layout.array layout ~init:0 "turn" l in
  let path =
    Array.init n (fun p ->
        let rec climb node acc =
          if node <= 1 then List.rev acc
          else climb (node / 2) ((node / 2, node mod 2) :: acc)
        in
        climb (l + p) [])
  in
  let ctx = { flags; turn; path } in
  (* wait while (flag[1-side] = 1 && turn = 1-side...) — Peterson: I wait
     while the rival is interested and it is my turn to yield. *)
  let acquire_node (node, side) =
    let* () = write ctx.flags.(node).(side) 1 in
    let* () = if pso_safe then fence else unit in
    let* () = write ctx.turn.(node) side in
    (* giving way: the LAST process to write turn waits *)
    let* () = fence in
    let rec await fuel =
      if fuel <= 0 then raise (Prog.Spin_exhausted ctx.turn.(node))
      else
        let* rival = read ctx.flags.(node).(1 - side) in
        if rival = 0 then unit
        else
          let* t = read ctx.turn.(node) in
          if t <> side then unit else await (fuel - 1)
    in
    await !Tsim.Prog.default_spin_fuel
  in
  let release_node (node, side) =
    let* () = write ctx.flags.(node).(side) 0 in
    fence
  in
  let entry p = seq (List.map acquire_node ctx.path.(p)) in
  let exit_section p =
    seq (List.map release_node (List.rev ctx.path.(p)))
  in
  {
    Lock_intf.name = (if pso_safe then "tournament-pso" else "tournament");
    uses_rmw = false;
    pure = true;
    one_time = false;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let family = Lock_intf.make_family "tournament" (fun ~n -> make ~n ())

let family_pso =
  Lock_intf.make_family "tournament-pso" (fun ~n -> make ~pso_safe:true ~n ())
