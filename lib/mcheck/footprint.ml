(* Per-move footprints and the independence relation driving the
   explorer's partial-order reduction.

   A scheduler move either steps a process or commits one of its buffered
   writes. Its footprint over-approximates every channel through which
   the move can influence — or be influenced by — a move of another
   process, *restricted to the state the explorer distinguishes*: shared
   memory, write buffers, continuations, sections and fence flags (the
   fingerprint projection), plus the two verdict channels (the CS
   exclusion check and deadlock detection). Channels outside that
   projection (awareness sets, RMR/cache bookkeeping, contention
   accounting) are deliberately ignored: they influence neither verdicts
   nor any future projected transition.

   Two moves of different processes are independent when, from any state
   where both are enabled, (a) executing them in either order yields the
   same projected state, and (b) neither affects the other's enabledness
   or outcome (including whether a violation is raised). Enabledness in
   this machine is process-local — no move of [p] ever enables or
   disables a move of [q] — so independence reduces to footprint
   disjointness plus two property-specific clauses:

   - a CS execution reads every other process's CS-enabledness
     ([sec = Entry], [cont = Return], [not in_fence]), so it is dependent
     on any move that may change that predicate ([may_enable_cs]) and on
     other CS executions;
   - everything else is dependent exactly on shared-variable read/write
     conflicts.

   Moves of the same process are always dependent (program order, FIFO
   buffer order, and the issue-replaces-pending-write rule). *)

open Tsim
open Tsim.Ids

type move =
  | Step of Pid.t
  | Commit of Pid.t
  | Commit_var of Pid.t * Var.t
  | Crash of Pid.t * int
  | Recover of Pid.t
  | Abort of Pid.t

let move_pid = function
  | Step p | Commit p | Commit_var (p, _) | Crash (p, _) | Recover p
  | Abort p ->
      p

(* Fields are mutable solely for [of_move_into]'s in-place refill of a
   scratch record on the explorer hot path; every other producer builds a
   fresh record and no consumer ever writes one. *)
type t = {
  mutable pid : Pid.t;
  mutable reads : int;  (* bitset of shared variables read from memory *)
  mutable writes : int;
      (* bitset of shared variables written (committed / RMW) *)
  mutable cs_check : bool;
      (* CS execution: reads everyone's CS-enabledness *)
  mutable may_enable_cs : bool;  (* may change the owner's CS-enabledness *)
  mutable budget : bool;
      (* consumes the shared crash budget: crash moves disable each other
         once the budget runs out, so any two of them are dependent *)
  mutable global : bool;  (* conservative fallback: dependent on everything *)
}

(* Variables above the one-word bitset capacity fall back to [global]
   (dependent on everything) — correctness never relies on the bitset. *)
let tracked_vars = Sys.int_size - 2

let local ?(may_enable_cs = false) pid =
  { pid; reads = 0; writes = 0; cs_check = false; may_enable_cs;
    budget = false; global = false }

let of_var pid ~may_enable_cs ~reads ~writes v =
  if v < 0 || v >= tracked_vars then
    { pid; reads = 0; writes = 0; cs_check = false; may_enable_cs;
      budget = false; global = true }
  else
    let b = 1 lsl v in
    { pid; reads = (if reads then b else 0);
      writes = (if writes then b else 0); cs_check = false; may_enable_cs;
      budget = false; global = false }

let of_move m mv =
  match mv with
  | Step p -> (
      let may = Machine.step_may_enable_cs m p in
      match Machine.step_footprint m p with
      | Machine.F_none | Machine.F_local -> local ~may_enable_cs:may p
      | Machine.F_read v ->
          of_var p ~may_enable_cs:may ~reads:true ~writes:false v
      | Machine.F_write v ->
          of_var p ~may_enable_cs:may ~reads:false ~writes:true v
      | Machine.F_rmw v ->
          of_var p ~may_enable_cs:may ~reads:true ~writes:true v
      | Machine.F_cs ->
          { pid = p; reads = 0; writes = 0; cs_check = true;
            may_enable_cs = false; budget = false; global = false })
  | Commit p -> (
      match Wbuf.peek (Machine.proc m p).Machine.buf with
      | Some e ->
          of_var p ~may_enable_cs:false ~reads:false ~writes:true e.Wbuf.var
      | None ->
          (* commit of an empty buffer: never enabled; stay conservative *)
          { pid = p; reads = 0; writes = 0; cs_check = false;
            may_enable_cs = false; budget = false; global = true })
  | Commit_var (p, v) ->
      of_var p ~may_enable_cs:false ~reads:false ~writes:true v
  | Crash (p, k) ->
      (* writes = the committed prefix (the first [k] buffered vars); the
         wipe itself is process-local. A crash always may change the
         owner's CS-enabledness (it un-enables a completed entry section,
         so its order against another process's CS execution decides
         whether a violation is observed), and it consumes the shared
         crash budget. *)
      let buf = (Machine.proc m p).Machine.buf in
      let writes = ref 0 and global = ref false in
      let i = ref 0 in
      Wbuf.iter
        (fun e ->
          if !i < k then begin
            if e.Wbuf.var >= tracked_vars then global := true
            else writes := !writes lor (1 lsl e.Wbuf.var)
          end;
          incr i)
        buf;
      { pid = p; reads = 0; writes = !writes; cs_check = false;
        may_enable_cs = true; budget = true; global = !global }
  | Recover p -> local p
  | Abort p ->
      (* Process-local: the buffer is kept, the continuation swaps to the
         cleanup section. Like a crash it changes the owner's section
         against the CS check and consumes a shared fault budget (any two
         budget moves are ordered conservatively). *)
      { pid = p; reads = 0; writes = 0; cs_check = false;
        may_enable_cs = true; budget = true; global = false }

(* --- allocation-free refill (explorer hot path) ---------------------- *)

(* [of_move] costs ~14 words per call (the [pending] payload, the
   [step_footprint] constructor, the record itself); with several calls
   per node that was a measurable slice of the explorer's minor-GC
   pressure. [of_move_into] computes the same footprint into a caller-
   owned scratch record with zero allocation, via
   {!Machine.step_footprint_packed}. *)

let make_scratch () =
  { pid = Pid.of_int 0; reads = 0; writes = 0; cs_check = false;
    may_enable_cs = false; budget = false; global = false }

let[@inline] fill f pid ~reads ~writes ~cs_check ~may_enable_cs ~budget
    ~global =
  f.pid <- pid;
  f.reads <- reads;
  f.writes <- writes;
  f.cs_check <- cs_check;
  f.may_enable_cs <- may_enable_cs;
  f.budget <- budget;
  f.global <- global

let[@inline] fill_var f pid ~may_enable_cs ~reads ~writes v =
  if v < 0 || v >= tracked_vars then
    fill f pid ~reads:0 ~writes:0 ~cs_check:false ~may_enable_cs
      ~budget:false ~global:true
  else
    let b = 1 lsl v in
    fill f pid
      ~reads:(if reads then b else 0)
      ~writes:(if writes then b else 0)
      ~cs_check:false ~may_enable_cs ~budget:false ~global:false

let of_move_into f m mv =
  match mv with
  | Step p -> (
      let may = Machine.step_may_enable_cs m p in
      let packed = Machine.step_footprint_packed m p in
      let v = packed lsr 3 in
      match packed land 7 with
      | 0 | 1 ->
          (* F_none / F_local *)
          fill f p ~reads:0 ~writes:0 ~cs_check:false ~may_enable_cs:may
            ~budget:false ~global:false
      | 2 -> fill_var f p ~may_enable_cs:may ~reads:true ~writes:false v
      | 3 -> fill_var f p ~may_enable_cs:may ~reads:false ~writes:true v
      | 4 -> fill_var f p ~may_enable_cs:may ~reads:true ~writes:true v
      | _ ->
          (* F_cs *)
          fill f p ~reads:0 ~writes:0 ~cs_check:true ~may_enable_cs:false
            ~budget:false ~global:false)
  | Commit p ->
      let buf = (Machine.proc m p).Machine.buf in
      if Wbuf.is_empty buf then
        fill f p ~reads:0 ~writes:0 ~cs_check:false ~may_enable_cs:false
          ~budget:false ~global:true
      else
        fill_var f p ~may_enable_cs:false ~reads:false ~writes:true
          (Wbuf.peek_var buf)
  | Commit_var (p, v) ->
      fill_var f p ~may_enable_cs:false ~reads:false ~writes:true v
  | Crash (p, k) ->
      let buf = (Machine.proc m p).Machine.buf in
      let writes = ref 0 and global = ref false in
      let i = ref 0 in
      Wbuf.iter
        (fun e ->
          if !i < k then begin
            if e.Wbuf.var >= tracked_vars then global := true
            else writes := !writes lor (1 lsl e.Wbuf.var)
          end;
          incr i)
        buf;
      fill f p ~reads:0 ~writes:!writes ~cs_check:false ~may_enable_cs:true
        ~budget:true ~global:!global
  | Recover p ->
      fill f p ~reads:0 ~writes:0 ~cs_check:false ~may_enable_cs:false
        ~budget:false ~global:false
  | Abort p ->
      fill f p ~reads:0 ~writes:0 ~cs_check:false ~may_enable_cs:true
        ~budget:true ~global:false

let independent a b =
  (not (Pid.equal a.pid b.pid))
  && (not a.global) && (not b.global)
  && (not (a.budget && b.budget))
  && a.writes land (b.reads lor b.writes) = 0
  && b.writes land a.reads = 0
  && not (a.cs_check && (b.cs_check || b.may_enable_cs))
  && not (b.cs_check && a.may_enable_cs)

(* A purely local move touches no shared variable and cannot raise the
   exclusion check: the candidate class for singleton ample sets. (It may
   still carry [may_enable_cs]; the explorer validates that post hoc by
   peeking at the successor's pending event.) *)
let purely_local f =
  f.reads = 0 && f.writes = 0 && (not f.cs_check) && (not f.budget)
  && not f.global

(* --- dense move encoding (sleep-set masks) --------------------------- *)

(* Moves pack into [0 .. n*stride - 1]: per process, slot 0 is Step,
   slot 1 is Commit, slot [2+v] is Commit_var v. When crash moves are in
   play ([codec_of_config ~crashes:true]) the stride widens: slot 2 is
   Recover, slots [3+v] are Commit_var, and slots [3+nvars+k] are Crash
   with prefix [k] (0..nvars — a buffer holds at most one write per
   variable). When abort moves are in play ([~aborts:true]) one more
   slot — always the last of the stride — encodes Abort; crash and abort
   widenings compose. Sleep sets are then one-word bitsets over codes;
   configurations too large to encode simply run without sleep sets
   (masks stay 0), keeping the reduction sound. Fault-free explorations
   keep the narrow stride so their encodability is unchanged. *)
type codec = {
  stride : int;
  total_bits : int;
  encodable : bool;
  crashes : bool;
  aborts : bool;
}

let codec_of_config ?(crashes = false) ?(aborts = false) (cfg : Config.t) =
  let nvars = Layout.size cfg.Config.layout in
  let stride =
    (if crashes then 4 + (2 * nvars) else 2 + nvars)
    + if aborts then 1 else 0
  in
  let total_bits = cfg.Config.n * stride in
  { stride; total_bits; encodable = total_bits <= Sys.int_size - 2; crashes;
    aborts }

(* Variable count implied by the stride, independent of the widenings. *)
let codec_nvars c =
  let base = c.stride - if c.aborts then 1 else 0 in
  if c.crashes then (base - 4) / 2 else base - 2

let encode c = function
  | Step p -> p * c.stride
  | Commit p -> (p * c.stride) + 1
  | Commit_var (p, v) -> (p * c.stride) + (if c.crashes then 3 else 2) + v
  | Recover p ->
      if not c.crashes then invalid_arg "Footprint.encode: crash-free codec";
      (p * c.stride) + 2
  | Crash (p, k) ->
      if not c.crashes then invalid_arg "Footprint.encode: crash-free codec";
      (p * c.stride) + 3 + codec_nvars c + k
  | Abort p ->
      if not c.aborts then invalid_arg "Footprint.encode: abort-free codec";
      (p * c.stride) + c.stride - 1

let decode c code =
  let p = code / c.stride in
  let nvars = codec_nvars c in
  match code mod c.stride with
  | s when c.aborts && s = c.stride - 1 -> Abort p
  | 0 -> Step p
  | 1 -> Commit p
  | 2 when c.crashes -> Recover p
  | s when not c.crashes -> Commit_var (p, s - 2)
  | s when s - 3 < nvars -> Commit_var (p, s - 3)
  | s -> Crash (p, s - 3 - nvars)

let full_mask c = (1 lsl c.total_bits) - 1

(* Iterate the set bits of a sleep mask as decoded moves. *)
let iter_mask c f mask =
  let rec go code mask =
    if mask <> 0 then begin
      if mask land 1 <> 0 then f code (decode c code);
      go (code + 1) (mask lsr 1)
    end
  in
  go 0 (mask land full_mask c)
