(** Chase–Lev work-stealing deque.

    One owner domain pushes and pops at the bottom (LIFO, so the owner
    keeps depth-first locality); any number of thief domains steal from
    the top (FIFO, so thieves take the oldest — largest — subtrees).
    The classic algorithm (Chase & Lev, SPAA 2005), on OCaml [Atomic]s
    (sequentially consistent, so no fence subtleties carry over).

    Push and pop must only be called by the owning domain; steal and
    size are safe from anywhere. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom, growing the ring buffer as needed. *)

val pop : 'a t -> 'a option
(** Owner only: remove the most recently pushed element, racing thieves
    for the last one. *)

val steal : 'a t -> 'a option
(** Any domain: remove the oldest element, or [None] when (momentarily)
    empty. Internally retries CAS failures — a failure means another
    thief or the owner made progress, so the loop is wait-free in
    aggregate. *)

val size : 'a t -> int
(** Snapshot of the element count; exact for the owner between its own
    operations, advisory for everyone else. *)
