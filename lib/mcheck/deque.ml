(* Chase–Lev work-stealing deque over OCaml 5 atomics.

   Invariants (the 2005 paper's, restated for this encoding):
   - [top <= bottom + 1]; elements live at indices [top, bottom).
   - Only the owner writes [bottom] and the ring cells; thieves advance
     [top] by CAS, the owner CASes [top] only for the final element.
   - The ring (cells + mask) is published as ONE mutable pointer so a
     thief never observes a new array paired with an old mask; an old
     ring still holds every element in [top, bottom) at publication time
     (grow copies before publishing, and the owner never writes index i
     of the old ring after publishing the new one), so a thief racing a
     grow reads a stale but correct cell and the top-CAS arbitrates.

   All Atomic operations in OCaml are sequentially consistent, which
   subsumes the fences of the original algorithm. *)

type 'a ring = { cells : 'a option Atomic.t array; mask : int }

type 'a t = {
  mutable ring : 'a ring;  (* owner-written, racily read by thieves *)
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let make_ring cap = { cells = Array.init cap (fun _ -> Atomic.make None);
                      mask = cap - 1 }

let create () = { ring = make_ring 16; top = Atomic.make 0;
                  bottom = Atomic.make 0 }

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

let grow q b t =
  let old = q.ring in
  let next = make_ring ((old.mask + 1) * 2) in
  for i = t to b - 1 do
    Atomic.set next.cells.(i land next.mask)
      (Atomic.get old.cells.(i land old.mask))
  done;
  q.ring <- next

let push q v =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  if b - t > q.ring.mask then grow q b t;
  let r = q.ring in
  Atomic.set r.cells.(b land r.mask) (Some v);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  let r = q.ring in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore the canonical empty shape *)
    Atomic.set q.bottom t;
    None
  end
  else if b > t then Atomic.get r.cells.(b land r.mask)
  else begin
    (* last element: race thieves for it via top *)
    let v =
      if Atomic.compare_and_set q.top t (t + 1) then
        Atomic.get r.cells.(b land r.mask)
      else None
    in
    Atomic.set q.bottom (t + 1);
    v
  end

let rec steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let r = q.ring in
    let v = Atomic.get r.cells.(t land r.mask) in
    if Atomic.compare_and_set q.top t (t + 1) then v
    else steal q  (* lost to another thief or the owner's last-pop *)
  end
