(** Bounded exhaustive schedule exploration over the TSO/PSO machine.

    At each state the enabled moves are "process p executes its next
    event" and "commit p's oldest buffered write" — the full power of the
    scheduling adversary. Reports exclusion violations (with a replayable
    schedule), deadlocks, and optionally spin exhaustion.

    Duplicate states are pruned by fingerprint: shared memory, buffers,
    pending ops, sections, passage counts and structural continuation
    hashes, folded into a single 63-bit FNV-1a value ({!fingerprint}).
    Two distinct states hashing to the same value would be conflated, so
    verification verdicts are "no violation in the full deduplicated
    space up to 63-bit hash collisions" — a high-confidence check, not a
    formal proof. (The seed engine had the same caveat through its
    [Hashtbl.hash]-based continuation digests, with a far smaller
    effective hash: continuations are now digested with
    [Hashtbl.hash_param 128 256] so deep spin states hash apart.)
    Reported violations are always sound: their schedules replay on a
    fresh machine.

    Machines are explored with {!Config.t.record_trace} off by default,
    making {!Machine.clone} O(state) instead of O(depth + state); pass
    [~record_trace:true] to cross-check against trace-recording runs. *)

open Tsim
open Tsim.Ids

type move =
  | Step of Pid.t
  | Commit of Pid.t  (** oldest buffered write (TSO) *)
  | Commit_var of Pid.t * Var.t  (** any buffered write (PSO only) *)

val move_to_string : move -> string

type violation = {
  schedule : move list;
  kind : [ `Exclusion of Pid.t * Pid.t | `Deadlock | `Spin_exhausted ];
}

type result = {
  nodes : int;
  exhausted : bool;  (** the whole (pruned) space was explored *)
  verified : bool;  (** exhausted with no violations *)
  violations : violation list;
  max_depth : int;
}

val enabled_moves : Machine.t -> move list
val apply : Machine.t -> move -> unit

val fingerprint : Machine.t -> int
(** Packed FNV-1a state hash used for duplicate pruning (allocation-free;
    see the module comment for the soundness caveat). *)

val explore :
  ?max_nodes:int ->
  ?max_violations:int ->
  ?dedup:bool ->
  ?on_spin:[ `Prune | `Violation ] ->
  ?spin_fuel:int ->
  ?record_trace:bool ->
  ?domains:int ->
  Config.t ->
  result
(** Defaults: 500k nodes, stop at the first violation, dedup on, spin
    exhaustion prunes the branch (sound for exclusion checking: spin
    re-reads do not change shared state), busy-wait fuel 6, trace
    recording off, one domain.

    [~domains:k] with [k > 1] expands the root breadth-first until at
    least [8k] pending states exist, then splits that frontier
    round-robin across [k] OCaml domains. Each domain searches with its
    own seen-table (seeded with the BFS prefix) and a fixed share of the
    node budget, so the run is deterministic for a fixed [k]; results are
    merged in frontier order. Cross-domain deduplication is lost, so
    [nodes] may exceed the single-domain count, and when violations exist
    each domain stops at its own [max_violations] cap before the merge
    truncates to the global cap. [verified]/violation kinds agree with
    the sequential engine. *)

val replay_schedule : Config.t -> move list -> Machine.t
(** Re-execute a (violating) schedule on a fresh machine, using the given
    configuration unchanged (so with [record_trace] on, the replayed
    trace is renderable). *)
