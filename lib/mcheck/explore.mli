(** Bounded exhaustive schedule exploration over the TSO/PSO machine.

    At each state the enabled moves are "process p executes its next
    event" and "commit p's oldest buffered write" — the full power of the
    scheduling adversary. Reports exclusion violations (with a replayable
    schedule), deadlocks, and optionally spin exhaustion.

    Duplicate states are pruned by fingerprint: shared memory, buffers,
    pending ops, sections, passage counts and structural continuation
    hashes, folded into a single packed 63-bit Zobrist-style XOR value
    ({!Machine.fingerprint}, re-exported as {!fingerprint}; the journal
    engine maintains it incrementally, see {!Machine.fingerprint_fast}).
    Two distinct states hashing to the same value would be conflated, so
    verification verdicts are "no violation in the full deduplicated
    space up to 63-bit hash collisions" — a high-confidence check, not a
    formal proof. (The seed engine had the same caveat through its
    [Hashtbl.hash]-based continuation digests, with a far smaller
    effective hash: continuations are now digested with
    [Hashtbl.hash_param 128 256] so deep spin states hash apart.)
    Reported violations are always sound: their schedules replay on a
    fresh machine.

    Machines are explored with {!Config.t.record_trace} off by default,
    making {!Machine.clone} O(state) instead of O(depth + state); pass
    [~record_trace:true] to cross-check against trace-recording runs.

    {2 Partial-order reduction}

    With [~por:true] (the default) the explorer applies a dynamic
    partial-order reduction built on the independence relation of
    {!Footprint}. Soundness rests on the following facts about the
    machine:

    - {b Enabledness is process-local.} Whether a move of [p] is enabled
      depends only on [p]'s own state (continuation, buffer, fence flag,
      section): no move of [q] ever enables or disables a move of [p].
      Every ample/persistent-set condition about enabledness is therefore
      trivial here.

    - {b Independence implies projected commutation.} Two moves with
      {!Footprint.independent} footprints touch disjoint shared
      variables, are not CS executions sensitive to each other, and
      belong to different processes; executing them in either order from
      any common state reaches the same state {e up to the fingerprint
      projection} (shared memory, buffers, pending ops, fence flags,
      sections, passage counts, continuations). Unprojected bookkeeping
      (awareness sets, RMR/cache/contention accounting) may differ, but
      it influences neither verdicts nor any future projected transition,
      so the verdict set — exclusion, deadlock, spin exhaustion — is
      preserved. Both violation channels are in the relation explicitly:
      a CS execution is dependent on every move that may make its owner
      CS-enabled ([may_enable_cs]) and on other CS executions, so an
      exclusion raised (or avoided) in one order is raised (or avoided)
      in the other; deadlocks only occur at move-less states, which the
      reduction never skips.

    - {b Singleton ample sets.} When some process's only enabled move is
      a [Step] with a purely-local footprint (no shared access, no CS
      check) that verifiably does not make its owner CS-enabled, that
      move is independent of {e every} move of {e every} other process,
      now and after any interleaving — nobody else touches the owner's
      local state, so its footprint and successor are stable. Exploring
      it alone is a persistent set; the skipped interleavings commute
      into the explored ones. Validation is post hoc: the move is applied
      to a clone and the successor's pending event inspected; candidates
      that become CS-enabled or raise fall back to full expansion.
      Local move chains are finite and acyclic in fingerprint space
      (spin fuel lives in the hashed continuation, passage counts are
      fingerprinted), so the reduction cannot postpone the other
      processes forever (no "ignoring problem").

    - {b Sleep sets with mask-aware caching.} After exploring move [a] at
      a state, [a] is put to sleep for later siblings' subtrees and woken
      by the first dependent move. The seen-table stores, per
      fingerprint, the sleep mask the state was explored under; a
      revisit under sleep [z] against stored [z'] is pruned when
      [z' ⊆ z] and otherwise re-explores exactly the uncovered moves
      (sleep [z ∪ ¬z']), storing the combined coverage [z ∩ z']. Sleep
      masks are one-word bitsets over a dense move code; configurations
      whose move space exceeds a word run with masks pinned to 0 —
      plain fingerprint dedup, still sound, and identical to [~por:false]
      behaviour except for singleton-ample pruning.

    The reduction preserves [verified] and the {e set of violation
    kinds}; it does not preserve node counts (that is the point), the
    specific representative schedules, or the number of distinct
    violations found before a cap. *)

open Tsim
open Tsim.Ids

type move = Footprint.move =
  | Step of Pid.t
  | Commit of Pid.t  (** oldest buffered write (TSO) *)
  | Commit_var of Pid.t * Var.t  (** any buffered write (PSO only) *)
  | Crash of Pid.t * int
      (** crash fault committing a [k]-entry buffer prefix
          ({!Machine.crash}); only generated under [~max_crashes > 0] *)
  | Recover of Pid.t  (** restart a crashed process *)
  | Abort of Pid.t
      (** abort fault at a declared wait point ({!Machine.abort}); only
          generated under [~max_aborts > 0] *)

val move_to_string : move -> string

val move_of_string : string -> move option
(** Inverse of {!move_to_string} (["step p0"], ["commit p1"],
    ["commit p0 v3"], ["crash p0"], ["crash p0 2"], ["recover p1"],
    ["abort p0"]); [None] on anything else. *)

(** {1 Schedule files}

    One move per line; blank lines and ['#'] comments are ignored when
    reading, so fixtures can carry provenance headers. *)

val schedule_to_string : move list -> string
val schedule_of_string : string -> (move list, string) result
val save_schedule : string -> move list -> unit
val load_schedule : string -> (move list, string) result

type violation = {
  schedule : move list;
  kind : [ `Exclusion of Pid.t * Pid.t | `Deadlock | `Spin_exhausted ];
}

(** Why a search stopped before exhausting the space. [`Aborts] is an
    external abort request — the CLI's SIGINT flag ([~stop]) was raised
    mid-search; the explorer winds down and reports the typed partial
    verdict instead of dying. *)
type partial_reason = [ `Nodes | `Millis | `Violations | `Aborts ]

val partial_reason_name : partial_reason -> string

(** Search-internals tallies, kept in plain mutable ints on the hot path
    (always on — the cost is a handful of increments per node) and
    snapshotted into every {!result}. *)
type stats = {
  dedup_hits : int;  (** successor pruned: fingerprint seen with ⊆ mask *)
  resleeps : int;
      (** fingerprint seen but re-explored under a widened sleep mask *)
  sleep_prunes : int;  (** moves skipped because they were asleep *)
  ample_chains : int;  (** singleton-ample chases started *)
  ample_fused : int;  (** extra singleton moves fused into those chases *)
  seen_entries : int;
      (** seen-store occupancy at the end. Sequential exact mode: hash
          table size; shared store (parallel, or any memory-bounded
          mode): the ONE global store's occupancy — domains share it, so
          this is a global count, not a per-domain sum *)
  crashes_applied : int;  (** crash moves executed (≠ distinct schedules) *)
  aborts_applied : int;  (** abort moves executed (≠ distinct schedules) *)
  domains_used : int;
  domain_nodes : int list;
      (** nodes expanded per domain, in domain order; singleton for the
          sequential engine (coordinator BFS nodes excluded) *)
  merge_stall_us : int;
      (** summed idle time of early-finishing domains waiting for the
          slowest one to join; 0 for the sequential engine *)
  journal_peak : int;
      (** journal engine: high-water undo-log depth in records (max over
          domains); 0 under the clone engine *)
  undo_records : int;
      (** journal engine: total undo records pushed across the search
          (summed over domains); 0 under the clone engine *)
  steals : int;
      (** parallel mode: work items taken from another domain's deque
          (load-balancing events); 0 for the sequential engine *)
  store_evictions : int;
      (** [Store_bounded]: states evicted from the full store; each may
          cost one re-exploration of its subtree, never soundness *)
  store_drops : int;
      (** shared store: states left unstored (probe window or eviction
          retries exhausted) and therefore re-explored on every visit *)
  omission_prob : float;
      (** [Store_bitstate]: estimated probability that the next distinct
          state falsely aliases as already-seen at the final bit-array
          fill — [(ones/m)^k] ({!Fpstore.omission_prob}); 0.0 in the
          exact and bounded modes *)
  est_nodes : float;
      (** online Knuth estimate of the TOTAL (pruned) search-space size,
          live mid-search and final at the end; 0.0 when the estimator is
          off ([?estimator] not passed to {!explore}). Parallel runs sum
          exact BFS-seed nodes with per-subtree worker estimates *)
  est_progress : float;
      (** estimated fraction of the space already explored, in [0, 1]:
          the probability mass of retired subtrees under the
          uniform-random-descent measure. Reaches exactly 1.0 on
          exhausted sequential runs (a built-in self-test of the mass
          accounting); 0.0 when the estimator is off *)
}

val zero_stats : stats

type result = {
  nodes : int;
  exhausted : bool;  (** the whole (pruned) space was explored *)
  verified : bool;  (** exhausted with no violations *)
  violations : violation list;
  max_depth : int;
  partial : partial_reason option;
      (** the resource bound or cap that cut the search short; [None] iff
          [exhausted] *)
  stats : stats;
}

val render_verdict : result -> string * int
(** One-line human verdict and the process exit code the CLI contract
    assigns it: [VERIFIED] → 0, [VIOLATION] → 1, [PARTIAL] (a cap or
    deadline stopped the search with no violation found) → 3. Exit code
    2 is reserved for bad input. A [VERIFIED] line confesses qualified
    coverage inline: nonzero [omission_prob] (bitstate aliasing) and
    nonzero [store_drops] (a saturated exact store that fell back to
    re-exploration) are appended rather than hidden in the stats. *)

val enabled_moves :
  ?max_crashes:int -> ?max_aborts:int -> Machine.t -> move list
(** Enabled moves in a state. With [~max_crashes] above the machine's
    {!Machine.crashes_total}, crash moves are offered for every live
    uncrashed process (one per legal commit-prefix length under
    [Atomic_prefix]); crashed processes offer [Recover] instead of
    [Step]. With [~max_aborts] above {!Machine.aborts_total}, an [Abort]
    move is offered for every process at a declared wait point
    ({!Machine.abort_deliverable}). Defaults 0: failure-free, as
    before. *)

val apply : Machine.t -> move -> unit
(** @raise Invalid_argument on a move illegal in the current state (e.g.
    [Recover] of an uncrashed process, or a crash prefix that violates
    the configured {!Config.crash_semantics}). *)

val fingerprint : Machine.t -> int
(** Packed 63-bit state hash used for duplicate pruning — an alias of
    {!Machine.fingerprint} (allocation-free full recompute; see the
    module comment for the soundness caveat). *)

val new_profile : ?every:int -> unit -> Obs.Profile.t
(** A fresh profile accumulator with the explorer's schema: move classes
    [step commit crash recover abort root] and process sections in
    {!Machine.section_code} order. Pass it to {!explore} as [?profile];
    the same accumulator may be reused across several runs (profiles
    sum). {!explore} rejects accumulators built with any other schema.

    [every] is {!Obs.Profile.create}'s sampling stride: 1 (default)
    attributes every node exactly; [k > 1] records one admitted node in
    [k] — node and RMR counts scale by [k] (totals accurate to within
    one stride), tick and undo-record totals stay exact. The parallel
    driver creates its per-domain shards with the same stride. *)

val default_profile_every : int
(** The sampling stride the front ends (CLI [verify --profile], bench
    [--profile]) use: strided statistical attribution cheap enough to
    leave on — the ≤5% pay-for-use overhead contract is asserted
    against this configuration in the bench. *)

val explore :
  ?max_nodes:int ->
  ?max_violations:int ->
  ?dedup:bool ->
  ?on_spin:[ `Prune | `Violation ] ->
  ?spin_fuel:int ->
  ?record_trace:bool ->
  ?domains:int ->
  ?por:bool ->
  ?max_crashes:int ->
  ?max_aborts:int ->
  ?stop:bool Atomic.t ->
  ?max_millis:int ->
  ?on_fingerprint:(int -> unit) ->
  ?obs:Obs.Telemetry.t ->
  ?paranoid_fp:bool ->
  ?estimator:Obs.Estimator.cfg ->
  ?profile:Obs.Profile.t ->
  Config.t ->
  result
(** Defaults: 500k nodes, stop at the first violation, dedup on, spin
    exhaustion prunes the branch (sound for exclusion checking: spin
    re-reads do not change shared state), busy-wait fuel 6, trace
    recording off, one domain, partial-order reduction on, no crash
    faults, no wall-clock bound.

    [~max_crashes:k] lets the adversary inject up to [k] crash faults
    across the whole run ({!Machine.crash}, per the configuration's
    {!Config.crash_semantics}). Crash moves consume a shared budget, so
    they are pairwise dependent in the reduction, and singleton-ample
    fusion is suspended while budget remains (a process's own crash does
    not commute with its local steps); sleep sets stay on with a widened
    move codec. Failure-free runs ([k = 0], the default) are bit-for-bit
    unaffected.

    [~max_aborts:k] does the same for abort faults ({!Machine.abort},
    requires {!Config.t.abort_section}): the adversary may cancel up to
    [k] acquisition attempts at declared wait points. Abort moves carry
    the same budget footprint flag as crashes — pairwise dependent, and
    singleton-ample fusion is suspended while abort budget remains (a
    local step may open or close the abortable window that gates the
    process's own abort move). Both budgets may be nonzero at once;
    crashes may land inside abort cleanup sections.

    [~stop] is an external interrupt flag, polled with the deadline
    (every 1024 nodes): once set, the search winds down and the result
    carries [partial = Some `Aborts] — the CLI maps SIGINT onto it so an
    interrupted verification still flushes stats and exits 3.

    [~max_millis:ms] bounds wall-clock time; on expiry the result carries
    [partial = Some `Millis] (the deadline is polled every 1024 nodes, so
    overshoot is bounded by ~1024 node expansions).

    [~por:false] disables the reduction entirely (full interleaving
    exploration, exactly the previous engine); verdicts agree with
    [~por:true], node counts are larger.

    [~on_fingerprint] is called with the fingerprint of every successor
    state visited (duplicates included) — a test hook for checking that
    the reduced exploration's state set is contained in the full one.
    Only meaningful with [~dedup:true]. {b Restriction:} the hook is a
    single closure that cannot be invoked from concurrent domains, so it
    requires [domains = 1].
    @raise Invalid_argument if [~on_fingerprint] is combined with
    [domains > 1] (and for [domains < 1] or [max_crashes < 0]).

    [~domains:k] with [k > 1] expands the root breadth-first until at
    least [8k] pending states exist, then parks that frontier on [k]
    work-stealing deques ({!Deque}, round-robin) served by [k] OCaml
    domains. All domains dedup against ONE shared lock-free fingerprint
    store ({!Fpstore}) — every reachable state is claimed by exactly one
    visitor, so [nodes] matches the sequential count when sleep masks
    are trivial ([~por:false], or a non-encodable move space) and the
    search is not cut by a cap. Domains load-balance by stealing parked
    subtrees from each other and draw node budget from a shared pool in
    chunks (the budget may overshoot by at most one chunk per domain).

    Determinism under [k > 1]: [verified], [exhausted] and the set of
    violations are independent of scheduling — violations are merged in
    (frontier index, schedule) order, a key intrinsic to the violation
    — but [max_depth], [stats] tallies and (under nontrivial sleep
    masks) [nodes] may vary run to run, because which visitor reaches a
    state first changes re-exploration, not coverage. When violations
    exist, each domain stops at its own [max_violations] cap before the
    merge truncates to the global cap, so the surviving set is the
    least-tagged violations found. Sleep masks attached to frontier
    states travel with them, so the reduction composes with the parallel
    driver unchanged (see DESIGN.md §5f for the soundness argument).

    The seen-state memory policy is selected by {!Config.t.store}:
    [Store_exact] (default), or the memory-bounded [Store_bitstate] /
    [Store_bounded] modes, which run through the shared store at every
    domain count — bitstate verdicts of [verified] carry the
    [omission_prob] caveat; bounded mode stays exhaustive and pays
    re-exploration for evictions. Under bitstate the sleep-set
    reduction is suspended at each newly-admitted state (the one-bit
    store cannot remember which moves were slept, so first-visit
    coverage must be full — see {!Fpstore.masks}); hash aliasing is
    then the {e only} omission channel, and it is the one
    [omission_prob] measures.

    The child-expansion strategy is selected by {!Config.t.engine}:
    [`Journal] (the default) steps one machine per domain in place and
    rolls back through {!Machine.Journal} after each subtree; [`Clone]
    copies the machine per child (the legacy engine). The two engines
    visit identical state spaces — same verdicts, node counts and
    fingerprint sets. Parallel frontier hand-off always clones, under
    either engine, so frontier machines are independent.

    [~paranoid_fp:true] makes the journal engine cross-check the
    incrementally-maintained fingerprint against a full recompute at
    every node ({!Machine.fingerprint_fast} = {!Machine.fingerprint}),
    failing loudly on drift. A debug mode; off by default. No effect
    under the clone engine.

    [~obs] attaches a telemetry hub ({!Obs.Telemetry}): the search emits
    a time-based heartbeat (~1 Hz, re-armed from a deadline checked
    inside the every-1024-expansions stop/deadline poll, so an idle hub
    costs one comparison) carrying counter snapshots, nodes/sec, current
    depth and — when the estimator is on — progress %, live
    estimated-total and ETA gauges, plus an ["explore.heartbeat"]
    instant that progress sinks use as their repaint trigger. Phase
    spans (BFS seeding, DFS, one lane per domain) and a final counter
    flush follow. Workers never touch the hub — their wall-clock windows
    are replayed by the coordinator after the join. Default
    {!Obs.Telemetry.null}: every emission reduces to one [enabled]
    check, leaving the ns/node budget intact (BENCH_PR4).

    [~estimator] attaches an online Knuth tree-size estimator
    ({!Obs.Estimator}): [cfg.probes] random root-to-leaf descents are
    woven through the DFS (deterministically seeded — the search itself
    is never perturbed), yielding the [est_nodes] / [est_progress]
    fields of {!stats} and the live heartbeat gauges above. Off by
    default (zero cost). Parallel runs give each domain an independent
    estimator (seed + domain + 1) and combine: exact BFS-seed count +
    summed worker estimates; progress is the mean over domains.

    [~profile] attaches a per-depth-band × move-class × section ×
    location profile accumulator (build it with {!new_profile}); every
    admitted node is attributed exactly once — at admission — with its
    wall-time share, undo-record and remote-reference (RMR) deltas.
    Parallel runs shard per domain and merge deterministically (domain
    order) after the join. Off by default (zero cost); the accumulator
    keeps summing across runs, so one profile can cover a sweep.
    @raise Invalid_argument if the accumulator's schema is not
    {!new_profile}'s. *)

(** {1 Replay} *)

type replay_outcome =
  | R_completed  (** every move applied *)
  | R_exclusion of Pid.t * Pid.t  (** holder, intruder *)
  | R_spin of Var.t
  | R_bad_pid of int * Pid.t
      (** the schedule references a process the machine does not have
          (0-based move index, offending pid) — detected by a pre-scan
          before any move is applied *)
  | R_bad_abort of int * Pid.t
      (** an [abort] line lands on a process that is not at a declared
          wait point (or the configuration has no abort section) —
          decided before the move is applied, so the machine shows the
          state the bad abort was attempted in *)
  | R_stuck of int * string
      (** 0-based index of the first inapplicable move, and why *)

val replay : Config.t -> move list -> Machine.t * replay_outcome
(** Re-execute a schedule on a fresh machine (configuration unchanged, so
    with [record_trace] on the trace is renderable), reporting how far it
    got. The machine reflects the state reached when the outcome was
    decided ([R_bad_pid] is decided before any move runs, so the machine
    is still initial). *)

val replay_schedule : Config.t -> move list -> Machine.t
(** [fst (replay cfg schedule)] — kept for callers that only display. *)
