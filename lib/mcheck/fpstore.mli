(** Shared lock-free fingerprint store for parallel exploration.

    One store is shared by every exploration domain. It answers a single
    question on the hot path — "has this state been explored, and if only
    partially, which moves are still owed?" — with the same mask-aware
    semantics as the sequential seen table in {!Explore}, but safe (and
    cheap) under concurrent visitors.

    {2 Layout}

    The store is a flat [Bigarray] of untagged native ints, accessed
    through C stubs wrapping [__atomic] builtins (fpstore_stubs.c). In
    the exact and bounded modes each slot is a pair of words:

    - the {b fingerprint word}: 0 = empty, otherwise the packed 63-bit
      Zobrist fingerprint (a real fingerprint of 0 is remapped to a fixed
      nonzero constant);
    - the {b remaining word}: the set of move codes {e not yet explored}
      from that state, initialized to all-ones.

    Slots are fingerprint-partitioned into shards (high fingerprint bits
    select the shard; probing is linear within the shard), which keeps a
    probe sequence inside one small cache region and spreads unrelated
    fingerprints across regions. Statistics counters are striped across
    cache lines for the same reason.

    {2 Protocol}

    A visitor arrives with its [cover] — the move set it is prepared to
    explore ([lnot sleep land full] under POR, all-ones otherwise):

    - {b empty slot}: store all-ones in the remaining word, then CAS the
      fingerprint word from 0. The winner owns the state ([New]); losers
      fall through to the found path.
    - {b found}: [fetch_and remaining (lnot cover)] atomically claims the
      intersection. If the returned prior value shares no bits with
      [cover] the state is fully covered ([Covered]); otherwise the
      visitor owes exactly the [Partial] fresh bits it claimed.

    Every race falls to the sound side: a concurrent all-ones
    re-initialization can only {e resurrect} remaining bits (causing
    re-exploration, never a missed interleaving), and a visitor that
    observes its slot stolen by an eviction after the fetch-and restores
    all-ones and re-explores its full cover itself. See DESIGN.md §5f for
    the full argument.

    {2 Modes}

    - [Store_exact]: sized from the node budget; on (rare, counted)
      shard-window overflow a state is simply left unstored and explored.
    - [Store_bounded]: fixed 2^log2_slots capacity; overflow evicts the
      home slot of the probe window (re-exploration, counted).
    - [Store_bitstate]: SPIN-style supertrace — k hash bits per state in
      a fixed bit array; no masks, so a revisit always prunes. Distinct
      states may alias; {!omission_prob} reports the fill-dependent
      false-positive estimate [(ones/m)^k]. *)

type t

(** Verdict for one visited state. [Partial fresh] means: re-explore
    exactly the moves in [fresh] (a subset of the visit's cover); the
    caller's child sleep mask is [lnot fresh land full]. *)
type visit = New | Covered | Partial of int

val create : mode:Tsim.Config.store_mode -> expected:int -> t
(** [create ~mode ~expected] allocates a store. [expected] (the node
    budget) sizes the exact mode: the slot count is the next power of two
    above 1.4 × [expected], clamped to [2^12, 2^23] slots. Bitstate and
    bounded modes take their fixed size from the mode itself. *)

val visit : t -> fp:int -> cover:int -> visit
(** Visit a state. Safe to call from any number of domains
    concurrently. [cover] is the move set this visitor will explore when
    told [New] or granted a [Partial] superset; use [-1] (all moves)
    when sleep-set masking is off. *)

val entries : t -> int
(** Distinct states currently claimed (bitstate: states that set at
    least one new bit). Approximate only while visitors are concurrently
    inserting; exact once they have joined. *)

val evictions : t -> int
(** Bounded mode: states evicted to make room (each may cost one
    re-exploration of its subtree). 0 in other modes. *)

val drops : t -> int
(** States left unstored: an exact-mode shard whose probe window filled
    up, or a bounded-mode eviction abandoned after repeated CAS races.
    Each visit of such a state re-explores it. Always 0 in bitstate
    mode. *)

val omission_prob : t -> float
(** Bitstate mode: the probability that the {e next} distinct state
    aliases an already-set bit pattern and is wrongly pruned —
    [(ones/m)^k] at the current fill. 0.0 in exact and bounded modes
    (which never alias beyond the 63-bit fingerprint itself). *)

val capacity : t -> int
(** Slots (exact/bounded) or usable bits (bitstate). *)

val mode_name : t -> string
(** Human-readable mode + size, for logs and stats dumps. *)
