(** Shared lock-free fingerprint store for parallel exploration.

    One store is shared by every exploration domain. It answers a single
    question on the hot path — "has this state been explored, and if only
    partially, which moves are still owed?" — with the same mask-aware
    semantics as the sequential seen table in {!Explore}, but safe (and
    cheap) under concurrent visitors.

    {2 Layout}

    The store is a flat [Bigarray] of untagged native ints, accessed
    through C stubs wrapping [__atomic] builtins (fpstore_stubs.c). In
    the exact and bounded modes each slot is a pair of words:

    - the {b fingerprint word}: 0 = empty, otherwise the packed 63-bit
      Zobrist fingerprint (a real fingerprint of 0 is remapped to a fixed
      nonzero constant);
    - the {b remaining word}: the set of move codes {e not yet explored}
      from that state, initialized to all-ones.

    Slots are fingerprint-partitioned into shards (high fingerprint bits
    select the shard; probing is linear within the shard), which keeps a
    probe sequence inside one small cache region and spreads unrelated
    fingerprints across regions. Statistics counters are striped across
    cache lines for the same reason.

    {2 Protocol}

    A visitor arrives with its [cover] — the move set it is prepared to
    explore ([lnot sleep land full] under POR, all moves otherwise;
    covers are masked to their 63-bit nonnegative magnitude, the word's
    sign bit being reserved as an initialized marker):

    - {b empty slot}: CAS the remaining word from its pristine 0 to
      all-ones (a one-shot initialization — fully-claimed words keep the
      sign bit, so 0 never recurs and no racer can resurrect granted
      bits), then CAS the fingerprint word from 0. The winner owns the
      state and claims its cover through the same fetch_and as everyone
      else, so racing same-fingerprint visitors partition the cover
      ([New]/[Partial]/[Covered]) rather than double-explore it.
    - {b found}: [fetch_and remaining (lnot cover)] atomically claims the
      intersection. If the returned prior value shares no bits with
      [cover] the state is fully covered ([Covered]); otherwise the
      visitor owes exactly the [Partial] fresh bits it claimed.

    In exact mode masks only ever shrink, so every move bit is granted
    to exactly one visitor — which is what makes the explored node count
    independent of domain timing under trivial masks. Bounded mode adds
    eviction, whose races fall to the sound side: a visitor that may
    have straddled a slot recycle restores all-ones ({e resurrecting}
    remaining bits — re-exploration, never a missed interleaving) and
    explores its full cover itself. See DESIGN.md §5f for the full
    argument.

    {2 Modes}

    - [Store_exact]: sized from the node budget; on (rare, counted)
      shard-window overflow a state is simply left unstored and explored.
    - [Store_bounded]: fixed 2^log2_slots capacity; overflow evicts the
      home slot of the probe window (re-exploration, counted). Eviction
      recycles slots, so the found path is additionally guarded by a
      tombstoned two-phase swap and a per-shard eviction seqlock: a
      visitor whose claim may have straddled an eviction resurrects the
      remaining word and explores its own cover itself.
    - [Store_bitstate]: SPIN-style supertrace — k hash bits per state in
      a fixed bit array; {!masks} is [false], a revisit always prunes,
      and the FIRST visit decides coverage forever, so the caller must
      explore the full move set when told [New] (ignore any sleep mask;
      {!Explore} does exactly that). Distinct states may alias;
      {!omission_prob} reports the fill-dependent false-positive
      estimate [(ones/m)^k]. *)

type t

(** Verdict for one visited state. [Partial fresh] means: re-explore
    exactly the moves in [fresh] (a subset of the visit's cover); the
    caller's child sleep mask is [lnot fresh land full]. *)
type visit = New | Covered | Partial of int

val create : mode:Tsim.Config.store_mode -> expected:int -> t
(** [create ~mode ~expected] allocates a store. [expected] (the node
    budget) sizes the exact mode: the slot count is the next power of two
    above 1.4 × [expected], clamped to [2^12, 2^23] slots (128 MiB).
    Beyond the cap the exact mode degrades gracefully but measurably —
    overflowing states are left unstored and re-explored on every visit
    (counted in {!drops}, surfaced in the verdict line) — which diverges
    from the uncapped sequential [Hashtbl] path at [domains = 1] with
    [Store_exact]; prefer [Store_bounded] for spaces past ~8M states.
    Bitstate and bounded modes take their fixed size from the mode
    itself. *)

val visit : t -> fp:int -> cover:int -> visit
(** Visit a state. Safe to call from any number of domains
    concurrently. [cover] is the move set this visitor will explore when
    told [New] or granted a [Partial] superset; use [-1] (all moves)
    when sleep-set masking is off. *)

val entries : t -> int
(** Distinct states currently claimed (bitstate: states that set at
    least one new bit). Approximate only while visitors are concurrently
    inserting; exact once they have joined. *)

val evictions : t -> int
(** Bounded mode: states evicted to make room (each may cost one
    re-exploration of its subtree). 0 in other modes. *)

val drops : t -> int
(** States left unstored: an exact-mode shard whose probe window filled
    up, or a bounded-mode eviction abandoned after repeated CAS races.
    Each visit of such a state re-explores it. Always 0 in bitstate
    mode. *)

val omission_prob : t -> float
(** Bitstate mode: the probability that the {e next} distinct state
    aliases an already-set bit pattern and is wrongly pruned —
    [(ones/m)^k] at the current fill. 0.0 in exact and bounded modes
    (which never alias beyond the 63-bit fingerprint itself). The
    estimate accounts for {e all} bitstate omissions only if callers
    honor the full-cover-on-[New] contract (see {!masks}). *)

val masks : t -> bool
(** Whether the store tracks a per-state remaining-moves mask ([true]
    for exact and bounded modes). When [false] (bitstate), [cover] is
    ignored, [Partial] is never returned, and a caller doing sleep-set
    POR must explore the {e full} move set on [New]: the single seen-bit
    cannot record that some moves were slept, so a first visit under a
    nonempty sleep mask would otherwise prune interleavings that no
    omission estimate accounts for. *)

val capacity : t -> int
(** Slots (exact/bounded) or usable bits (bitstate). *)

val mode_name : t -> string
(** Human-readable mode + size, for logs and stats dumps. *)
