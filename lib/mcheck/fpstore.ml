(* Shared lock-free fingerprint store. See fpstore.mli for the protocol
   overview and DESIGN.md §5f for the soundness argument; the short form
   of the invariant maintained here is:

     every remaining-word transition either HANDS OUT bits (fetch_and, to
     a visitor who then explores them) or RESURRECTS bits (a store of
     all-ones), never silently discards them — so for every state, the
     union of move sets handed out over time covers the union of move
     sets requested. Exact mode never resurrects (its masks only ever
     shrink), so there each bit is granted exactly once and the node
     count is race-free; bounded mode resurrects around evictions, so a
     lost race there costs re-exploration, never coverage.

   The flat region is a Bigarray of kind [int]: untagged native words,
   malloc'd outside the OCaml heap (stable pointer, shareable across
   domains), accessed through the __atomic stubs in fpstore_stubs.c. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external a_get : buf -> int -> int = "pa_fps_get" [@@noalloc]
external a_set : buf -> int -> int -> unit = "pa_fps_set" [@@noalloc]
external a_cas : buf -> int -> int -> int -> bool = "pa_fps_cas" [@@noalloc]

external a_fetch_and : buf -> int -> int -> int = "pa_fps_fetch_and"
  [@@noalloc]

external a_fetch_or : buf -> int -> int -> int = "pa_fps_fetch_or"
  [@@noalloc]

external a_fetch_add : buf -> int -> int -> int = "pa_fps_fetch_add"
  [@@noalloc]

external a_fence : unit -> unit = "pa_fps_fence" [@@noalloc]

type kind =
  | K_exact
  | K_bounded
  | K_bits of { words : int; hashes : int }

type t = {
  kind : kind;
  data : buf;
      (* exact/bounded: 2 words per slot (fp, remaining); bitstate: the
         bit array, 32 usable bits per word *)
  stats : buf;  (* striped counters, one 8-cell cache line per stripe *)
  evseq : buf;
      (* bounded: per-shard eviction seqlock — a start counter and a
         finish counter, each on its own cache line (see [evict]) *)
  slots : int;  (* exact/bounded; 0 for bitstate *)
  n_shards : int;
  shard_size : int;  (* slots / n_shards, a power of two *)
  shard_bits : int;  (* log2 n_shards *)
  window : int;  (* linear-probe window within a shard *)
}

type visit = New | Covered | Partial of int

(* --- counters ---------------------------------------------------------- *)

(* 16 stripes, 8 words apart so each stripe owns a 64-byte line; the
   stripe is picked from fingerprint bits so concurrent visitors of
   unrelated states bump different lines. Offsets within a stripe: *)
let o_entries = 0
let o_evictions = 1
let o_drops = 2
let o_ones = 3  (* bitstate: bits newly set *)

let n_stripes = 16
let stripe fp = (fp lsr 7) land (n_stripes - 1)
let bump t fp off v = ignore (a_fetch_add t.stats ((stripe fp * 8) + off) v)

let total t off =
  let s = ref 0 in
  for i = 0 to n_stripes - 1 do
    s := !s + a_get t.stats ((i * 8) + off)
  done;
  !s

(* --- hashing ----------------------------------------------------------- *)

(* murmur3-style finalizer over the native int, result forced positive.
   Fingerprints are already Zobrist-uniform, but the store indexes with
   LOW bits while the shard uses HIGH bits, and bitstate mode needs k
   independent remixes — one strong mixer serves all three. The
   multipliers are the canonical 64-bit fmix constants reduced to 63
   bits (shifted right one hex digit) with the low bit forced to 1: an
   even multiplier would zero the low result bit of the first stage,
   and the slot index is taken from exactly those low bits. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0xFF51AFD7ED558CD in
  let x = x lxor (x lsr 29) in
  let x = x * 0xC4CEB9FE1A85EC5 in
  (x lxor (x lsr 32)) land max_int

(* The fingerprint word uses 0 as the empty sentinel, so a genuine
   fingerprint of 0 (and negatives, for clean shard arithmetic) is
   remapped to a fixed nonzero constant / its 63-bit magnitude. *)
let canonical fp =
  let fp = fp land max_int in
  if fp = 0 then 0x2B992DDFA232 else fp

(* Mid-eviction marker for the fingerprint word. Canonical fingerprints
   are nonnegative and the empty sentinel is 0, so a negative value can
   never collide with either; a probing visitor treats it like any other
   mismatch and a found-path visitor's recheck treats it as "slot stolen
   underneath me". *)
let tombstone = min_int

(* The remaining word's sign bit doubles as an "initialized" marker:
   covers are stripped to their 62 nonnegative bits on entry, so every
   claim leaves the sign bit set and an initialized-but-fully-claimed
   word is [min_int], never 0 again. That keeps the one-shot pristine →
   all-ones CAS initialization in [visit_slots] sound — a visitor
   stalled across the whole claim cycle cannot re-initialize the word
   and resurrect already-granted bits — which in turn makes each move
   bit granted EXACTLY once in exact mode (the [nodes] determinism the
   .mli promises for trivial masks: one expansion per state). *)
let strip cover = cover land max_int

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let make_buf len : buf =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  Bigarray.Array1.fill b 0;
  b

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let create ~mode ~expected =
  let slot_store slots kind =
    let slots = next_pow2 slots 1 in
    let n_shards = max 1 (min 64 (slots / 64)) in
    let shard_size = slots / n_shards in
    { kind; data = make_buf (2 * slots); stats = make_buf (n_stripes * 8);
      evseq = make_buf (n_shards * 16); slots; n_shards; shard_size;
      shard_bits = log2 n_shards; window = min shard_size 64 }
  in
  match (mode : Tsim.Config.store_mode) with
  | Tsim.Config.Store_exact ->
      let want = expected + (2 * expected / 5) in
      slot_store (max 4096 (min want (1 lsl 23))) K_exact
  | Tsim.Config.Store_bounded { log2_slots } ->
      slot_store (1 lsl log2_slots) K_bounded
  | Tsim.Config.Store_bitstate { log2_bits; hashes } ->
      let words = max 32 (1 lsl (log2_bits - 5)) in
      { kind = K_bits { words; hashes }; data = make_buf words;
        stats = make_buf (n_stripes * 8); evseq = make_buf 16; slots = 0;
        n_shards = 1; shard_size = 0; shard_bits = 0; window = 0 }

(* --- bitstate ---------------------------------------------------------- *)

(* k fetch_or bits per state; a state whose bits were all already set is
   treated as seen (possibly falsely — that is the omission the caller
   reads from [omission_prob]). No masks: the first visitor's coverage
   claim is taken at face value, SPIN-supertrace style. *)
let visit_bits t ~words ~hashes fp =
  let newbits = ref 0 in
  for i = 0 to hashes - 1 do
    let h = mix (fp + (((i * 2) + 1) * 0x9E3779B97F4A7C1)) in
    let w = (h lsr 5) land (words - 1) in
    let b = 1 lsl (h land 31) in
    let old = a_fetch_or t.data w b in
    if old land b = 0 then incr newbits
  done;
  if !newbits = 0 then Covered
  else begin
    bump t fp o_entries 1;
    bump t fp o_ones !newbits;
    New
  end

(* --- exact / bounded --------------------------------------------------- *)

(* Per-shard eviction seqlock. Slot recycling is the one place a found
   visitor can be handed the WRONG state's remaining word, and the
   fingerprint-word recheck alone cannot close it: the slot can cycle
   victim → fp' → victim between a visitor's fetch_and and its recheck
   (the same fingerprint legitimately re-inserted through a second
   eviction), so the recheck passes while the claimed bits belonged to
   a dead incarnation — an ABA that silently un-owes moves. Each shard
   therefore counts evictions twice: [ev_start] is bumped before an
   eviction touches the slot and [ev_finish] after it has published.
   A found visitor in bounded mode trusts its fetch_and only if no
   eviction was in flight before it (start = finish) and none started
   before its recheck (start unchanged); otherwise it resurrects the
   word and serves its own cover (re-exploration, sound). The counters
   live a cache line apart per shard, and false alarms (an eviction of
   an unrelated slot in the same shard) only cost re-exploration. *)
let ev_start shard = shard * 16
let ev_finish shard = (shard * 16) + 8

(* Consume [cover] from a found slot: the fetch_and atomically claims
   remaining ∩ cover for this visitor. Exact mode never recycles slots,
   so the claim is trustworthy as-is. *)
let found_exact t ~ci cover =
  let old = a_fetch_and t.data (ci + 1) (lnot cover) in
  let fresh = old land cover in
  if fresh = 0 then Covered else Partial fresh

(* Bounded mode wraps the same claim in the shard seqlock (above) plus
   the fingerprint recheck; any doubt falls to self-service. *)
let found_bounded t ~shard ~ci fp cover =
  let s1 = a_get t.evseq (ev_start shard) in
  let f1 = a_get t.evseq (ev_finish shard) in
  if s1 <> f1 then Partial cover  (* eviction in flight: touch nothing *)
  else begin
    let old = a_fetch_and t.data (ci + 1) (lnot cover) in
    a_fence ();
    if a_get t.data ci <> fp || a_get t.evseq (ev_start shard) <> s1
    then begin
      (* the slot may have been recycled underneath the fetch_and:
         resurrect whatever we clawed (a stale clear only ever costs
         the new occupant re-exploration) and self-serve *)
      a_set t.data (ci + 1) (-1);
      Partial cover
    end
    else
      let fresh = old land cover in
      if fresh = 0 then Covered else Partial fresh
  end

let visit_slots t fp cover =
  let cover = strip cover in
  let shard = (fp lsr (62 - t.shard_bits)) land (t.n_shards - 1) in
  let base = shard * t.shard_size in
  let home = mix fp land (t.shard_size - 1) in
  (* [attempt] bounds eviction retries: each retry means another visitor
     just won a CAS on the home slot, so progress is global even when we
     personally give up and fall back to an unstored exploration. *)
  let rec probe i attempt =
    if i >= t.window then overflow attempt
    else begin
      let s = base + ((home + i) land (t.shard_size - 1)) in
      let ci = 2 * s in
      let stored = a_get t.data ci in
      if stored = fp then
        match t.kind with
        | K_bounded -> found_bounded t ~shard ~ci fp cover
        | K_exact | K_bits _ -> found_exact t ~ci cover
      else if stored = 0 then begin
        (* Initialize the remaining word to all-ones exactly once (CAS
           from pristine 0 — see [strip]) BEFORE publishing the
           fingerprint: a racer that loses the fingerprint CAS and lands
           in the found path must never read zeros as "everything
           explored", and a blind store here instead of a CAS would let
           a stalled racer resurrect bits already granted. The winner
           then claims its cover through the same fetch_and everyone
           else uses, so racing same-fingerprint visitors partition the
           cover instead of double-exploring it. *)
        ignore (a_cas t.data (ci + 1) 0 (-1));
        if a_cas t.data ci 0 fp then begin
          bump t fp o_entries 1;
          let old = a_fetch_and t.data (ci + 1) (lnot cover) in
          let fresh = old land cover in
          if fresh = cover then New
          else if fresh = 0 then Covered  (* racers claimed it all *)
          else Partial fresh
        end
        else probe i attempt  (* lost the claim: re-read this slot *)
      end
      else probe (i + 1) attempt  (* mismatch or tombstone: move on *)
    end
  and overflow attempt =
    match t.kind with
    | K_exact | K_bits _ ->
        (* exact mode never evicts: leave the state unstored (counted)
           and let the caller explore its full cover *)
        bump t fp o_drops 1;
        Partial cover
    | K_bounded ->
        if attempt >= 8 then begin
          bump t fp o_drops 1;
          Partial cover
        end
        else begin
          (* Two-phase eviction of the window's home slot, inside the
             shard seqlock: (1) CAS the fingerprint word to a tombstone
             — from here no new visitor can match the victim, and the
             CAS grants this evictor exclusive ownership of the slot
             against other evictors; (2) rebuild the remaining word from
             scratch with our own cover already claimed; (3) publish the
             new fingerprint. Publishing BEFORE the rebuild (or skipping
             the tombstone) would let a victim visitor's in-flight claim
             survive into the new state's mask, pruning moves nobody
             explored. Victim visitors racing any of this are caught by
             their recheck/seqlock and self-serve. *)
          let ci = 2 * (base + home) in
          ignore (a_fetch_add t.evseq (ev_start shard) 1);
          let victim = a_get t.data ci in
          let claimed =
            victim <> fp && victim <> tombstone && victim <> 0
            && a_cas t.data ci victim tombstone
          in
          if claimed then begin
            a_set t.data (ci + 1) (lnot cover);
            a_fence ();
            a_set t.data ci fp;
            bump t fp o_evictions 1
          end;
          ignore (a_fetch_add t.evseq (ev_finish shard) 1);
          if claimed then New
          else probe 0 (attempt + 1)
            (* the slot is busy (our fp arriving via a racer, a foreign
               tombstone, or a lost CAS): re-run the probe *)
        end
  in
  probe 0 0

let visit t ~fp ~cover =
  let fp = canonical fp in
  match t.kind with
  | K_bits { words; hashes } -> visit_bits t ~words ~hashes fp
  | K_exact | K_bounded -> visit_slots t fp cover

(* --- statistics -------------------------------------------------------- *)

(* Occupancy only ever changes on an empty→claimed transition (evictions
   swap the occupant without freeing the slot), so one counter serves
   every mode. *)
let entries t = total t o_entries

let evictions t = total t o_evictions
let drops t = total t o_drops

let omission_prob t =
  match t.kind with
  | K_exact | K_bounded -> 0.0
  | K_bits { words; hashes } ->
      let m = float_of_int (32 * words) in
      let ones = float_of_int (total t o_ones) in
      (ones /. m) ** float_of_int hashes

let masks t =
  match t.kind with K_exact | K_bounded -> true | K_bits _ -> false

let capacity t =
  match t.kind with
  | K_exact | K_bounded -> t.slots
  | K_bits { words; _ } -> 32 * words

let mode_name t =
  match t.kind with
  | K_exact -> Printf.sprintf "exact(%d slots)" t.slots
  | K_bounded -> Printf.sprintf "bounded(%d slots)" t.slots
  | K_bits { words; hashes } ->
      Printf.sprintf "bitstate(%d bits, k=%d)" (32 * words) hashes
