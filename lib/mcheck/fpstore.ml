(* Shared lock-free fingerprint store. See fpstore.mli for the protocol
   overview and DESIGN.md §5f for the soundness argument; the short form
   of the invariant maintained here is:

     every remaining-word transition either HANDS OUT bits (fetch_and, to
     a visitor who then explores them) or RESURRECTS bits (a store of
     all-ones), never silently discards them — so for every state, the
     union of move sets handed out over time covers the union of move
     sets requested, and a lost race costs re-exploration, not coverage.

   The flat region is a Bigarray of kind [int]: untagged native words,
   malloc'd outside the OCaml heap (stable pointer, shareable across
   domains), accessed through the __atomic stubs in fpstore_stubs.c. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external a_get : buf -> int -> int = "pa_fps_get" [@@noalloc]
external a_set : buf -> int -> int -> unit = "pa_fps_set" [@@noalloc]
external a_cas : buf -> int -> int -> int -> bool = "pa_fps_cas" [@@noalloc]

external a_fetch_and : buf -> int -> int -> int = "pa_fps_fetch_and"
  [@@noalloc]

external a_fetch_or : buf -> int -> int -> int = "pa_fps_fetch_or"
  [@@noalloc]

external a_fetch_add : buf -> int -> int -> int = "pa_fps_fetch_add"
  [@@noalloc]

type kind =
  | K_exact
  | K_bounded
  | K_bits of { words : int; hashes : int }

type t = {
  kind : kind;
  data : buf;
      (* exact/bounded: 2 words per slot (fp, remaining); bitstate: the
         bit array, 32 usable bits per word *)
  stats : buf;  (* striped counters, one 8-cell cache line per stripe *)
  slots : int;  (* exact/bounded; 0 for bitstate *)
  n_shards : int;
  shard_size : int;  (* slots / n_shards, a power of two *)
  shard_bits : int;  (* log2 n_shards *)
  window : int;  (* linear-probe window within a shard *)
}

type visit = New | Covered | Partial of int

(* --- counters ---------------------------------------------------------- *)

(* 16 stripes, 8 words apart so each stripe owns a 64-byte line; the
   stripe is picked from fingerprint bits so concurrent visitors of
   unrelated states bump different lines. Offsets within a stripe: *)
let o_entries = 0
let o_evictions = 1
let o_drops = 2
let o_ones = 3  (* bitstate: bits newly set *)

let n_stripes = 16
let stripe fp = (fp lsr 7) land (n_stripes - 1)
let bump t fp off v = ignore (a_fetch_add t.stats ((stripe fp * 8) + off) v)

let total t off =
  let s = ref 0 in
  for i = 0 to n_stripes - 1 do
    s := !s + a_get t.stats ((i * 8) + off)
  done;
  !s

(* --- hashing ----------------------------------------------------------- *)

(* murmur3-style finalizer over the native int, result forced positive.
   Fingerprints are already Zobrist-uniform, but the store indexes with
   LOW bits while the shard uses HIGH bits, and bitstate mode needs k
   independent remixes — one strong mixer serves all three. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0xFF51AFD7ED558CC in
  let x = x lxor (x lsr 29) in
  let x = x * 0xC4CEB9FE1A85EC5 in
  (x lxor (x lsr 32)) land max_int

(* The fingerprint word uses 0 as the empty sentinel, so a genuine
   fingerprint of 0 (and negatives, for clean shard arithmetic) is
   remapped to a fixed nonzero constant / its 63-bit magnitude. *)
let canonical fp =
  let fp = fp land max_int in
  if fp = 0 then 0x2B992DDFA232 else fp

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let make_buf len : buf =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  Bigarray.Array1.fill b 0;
  b

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let create ~mode ~expected =
  let slot_store slots kind =
    let slots = next_pow2 slots 1 in
    let n_shards = max 1 (min 64 (slots / 64)) in
    let shard_size = slots / n_shards in
    { kind; data = make_buf (2 * slots); stats = make_buf (n_stripes * 8);
      slots; n_shards; shard_size; shard_bits = log2 n_shards;
      window = min shard_size 64 }
  in
  match (mode : Tsim.Config.store_mode) with
  | Tsim.Config.Store_exact ->
      let want = expected + (2 * expected / 5) in
      slot_store (max 4096 (min want (1 lsl 23))) K_exact
  | Tsim.Config.Store_bounded { log2_slots } ->
      slot_store (1 lsl log2_slots) K_bounded
  | Tsim.Config.Store_bitstate { log2_bits; hashes } ->
      let words = max 32 (1 lsl (log2_bits - 5)) in
      { kind = K_bits { words; hashes }; data = make_buf words;
        stats = make_buf (n_stripes * 8); slots = 0; n_shards = 1;
        shard_size = 0; shard_bits = 0; window = 0 }

(* --- bitstate ---------------------------------------------------------- *)

(* k fetch_or bits per state; a state whose bits were all already set is
   treated as seen (possibly falsely — that is the omission the caller
   reads from [omission_prob]). No masks: the first visitor's coverage
   claim is taken at face value, SPIN-supertrace style. *)
let visit_bits t ~words ~hashes fp =
  let newbits = ref 0 in
  for i = 0 to hashes - 1 do
    let h = mix (fp + (((i * 2) + 1) * 0x9E3779B97F4A7C1)) in
    let w = (h lsr 5) land (words - 1) in
    let b = 1 lsl (h land 31) in
    let old = a_fetch_or t.data w b in
    if old land b = 0 then incr newbits
  done;
  if !newbits = 0 then Covered
  else begin
    bump t fp o_entries 1;
    bump t fp o_ones !newbits;
    New
  end

(* --- exact / bounded --------------------------------------------------- *)

(* Consume [cover] from a found slot. The fetch_and atomically claims
   remaining ∩ cover for this visitor. Bounded mode must then re-check
   the fingerprint word: if an eviction reused the slot underneath us,
   the fetch_and hit the NEW state's remaining word — restore all-ones
   (resurrection is sound, it only causes re-exploration) and serve our
   own cover ourselves, trusting nothing. *)
let found t ~recheck ~ci fp cover =
  let old = a_fetch_and t.data (ci + 1) (lnot cover) in
  if recheck && a_get t.data ci <> fp then begin
    a_set t.data (ci + 1) (-1);
    Partial cover
  end
  else
    let fresh = old land cover in
    if fresh = 0 then Covered else Partial fresh

let visit_slots t fp cover =
  let shard = (fp lsr (62 - t.shard_bits)) land (t.n_shards - 1) in
  let base = shard * t.shard_size in
  let home = mix fp land (t.shard_size - 1) in
  let recheck = t.kind = K_bounded in
  (* [attempt] bounds eviction retries: each retry means another visitor
     just won a CAS on the home slot, so progress is global even when we
     personally give up and fall back to an unstored exploration. *)
  let rec probe i attempt =
    if i >= t.window then overflow attempt
    else begin
      let s = base + ((home + i) land (t.shard_size - 1)) in
      let ci = 2 * s in
      let stored = a_get t.data ci in
      if stored = fp then found t ~recheck ~ci fp cover
      else if stored = 0 then begin
        (* all-ones BEFORE publishing the fingerprint: a racer that
           loses the CAS and lands in [found] must never read the
           zero-initialized remaining word as "everything explored" *)
        a_set t.data (ci + 1) (-1);
        if a_cas t.data ci 0 fp then begin
          bump t fp o_entries 1;
          ignore (a_fetch_and t.data (ci + 1) (lnot cover));
          New
        end
        else probe i attempt  (* lost the claim: re-read this slot *)
      end
      else probe (i + 1) attempt
    end
  and overflow attempt =
    match t.kind with
    | K_exact | K_bits _ ->
        (* exact mode never evicts: leave the state unstored (counted)
           and let the caller explore its full cover *)
        bump t fp o_drops 1;
        Partial cover
    | K_bounded ->
        if attempt >= 8 then begin
          bump t fp o_drops 1;
          Partial cover
        end
        else begin
          (* evict the window's home slot: all-ones first (stale readers
             of the old state's mask then only ever resurrect), then CAS
             the fingerprint over whatever is there. A CAS failure means
             a concurrent claim/eviction won — re-run the whole probe,
             the slot may now even hold our fingerprint. *)
          let ci = 2 * (base + home) in
          a_set t.data (ci + 1) (-1);
          let victim = a_get t.data ci in
          if victim <> fp && a_cas t.data ci victim fp then begin
            bump t fp o_evictions 1;
            ignore (a_fetch_and t.data (ci + 1) (lnot cover));
            New
          end
          else probe 0 (attempt + 1)
        end
  in
  probe 0 0

let visit t ~fp ~cover =
  let fp = canonical fp in
  match t.kind with
  | K_bits { words; hashes } -> visit_bits t ~words ~hashes fp
  | K_exact | K_bounded -> visit_slots t fp cover

(* --- statistics -------------------------------------------------------- *)

(* Occupancy only ever changes on an empty→claimed transition (evictions
   swap the occupant without freeing the slot), so one counter serves
   every mode. *)
let entries t = total t o_entries

let evictions t = total t o_evictions
let drops t = total t o_drops

let omission_prob t =
  match t.kind with
  | K_exact | K_bounded -> 0.0
  | K_bits { words; hashes } ->
      let m = float_of_int (32 * words) in
      let ones = float_of_int (total t o_ones) in
      (ones /. m) ** float_of_int hashes

let capacity t =
  match t.kind with
  | K_exact | K_bounded -> t.slots
  | K_bits { words; _ } -> 32 * words

let mode_name t =
  match t.kind with
  | K_exact -> Printf.sprintf "exact(%d slots)" t.slots
  | K_bounded -> Printf.sprintf "bounded(%d slots)" t.slots
  | K_bits { words; hashes } ->
      Printf.sprintf "bitstate(%d bits, k=%d)" (32 * words) hashes
