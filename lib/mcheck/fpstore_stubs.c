/* Atomic word operations over a Bigarray-of-int region.
 *
 * OCaml 5.1's stdlib has no atomic arrays: an [int Atomic.t array] boxes
 * one mutable record per cell, which is hopeless for a multi-megaword
 * fingerprint store. Instead the store is a flat Bigarray of kind [int]
 * (one untagged intnat per cell, malloc'd outside the OCaml heap, so the
 * data pointer is stable and addressable from every domain), and these
 * stubs provide the atomic accesses via the GCC/Clang __atomic builtins.
 *
 * All entry points are [@@noalloc]: they allocate nothing and never
 * release the runtime lock, so they cost a C call and the atomic op.
 *
 * Values cross the boundary through Long_val/Val_long: a 63-bit OCaml
 * int sign-extends into the intnat cell and truncates back losslessly,
 * so an all-ones OCaml int (-1) round-trips as all-ones — which is what
 * the "remaining moves" protocol in fpstore.ml relies on for its
 * fetch-and masking.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>

static intnat *cell(value ba, value i)
{
  return (intnat *) Caml_ba_data_val(ba) + Long_val(i);
}

CAMLprim value pa_fps_get(value ba, value i)
{
  return Val_long(__atomic_load_n(cell(ba, i), __ATOMIC_ACQUIRE));
}

CAMLprim value pa_fps_set(value ba, value i, value v)
{
  __atomic_store_n(cell(ba, i), Long_val(v), __ATOMIC_RELEASE);
  return Val_unit;
}

CAMLprim value pa_fps_cas(value ba, value i, value expected, value desired)
{
  intnat exp = Long_val(expected);
  return Val_bool(__atomic_compare_exchange_n(
      cell(ba, i), &exp, Long_val(desired), 0, __ATOMIC_ACQ_REL,
      __ATOMIC_ACQUIRE));
}

CAMLprim value pa_fps_fetch_and(value ba, value i, value v)
{
  return Val_long(__atomic_fetch_and(cell(ba, i), Long_val(v),
                                     __ATOMIC_ACQ_REL));
}

CAMLprim value pa_fps_fetch_or(value ba, value i, value v)
{
  return Val_long(__atomic_fetch_or(cell(ba, i), Long_val(v),
                                    __ATOMIC_ACQ_REL));
}

CAMLprim value pa_fps_fetch_add(value ba, value i, value v)
{
  return Val_long(__atomic_fetch_add(cell(ba, i), Long_val(v),
                                     __ATOMIC_ACQ_REL));
}

/* Sequentially-consistent fence. The bounded store's eviction seqlock
 * needs a store-load ordering point (the visitor's mask RMW must be
 * globally ordered before its validation re-reads of the fingerprint
 * word and the shard eviction counter), which acq_rel on two different
 * locations does not by itself provide on weakly-ordered hardware. */
CAMLprim value pa_fps_fence(value unit)
{
  __atomic_thread_fence(__ATOMIC_SEQ_CST);
  return Val_unit;
}
