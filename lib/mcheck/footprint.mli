(** Per-move footprints, the independence relation, and the dense move
    encoding used by the explorer's partial-order reduction.

    See {!Explore} for the soundness argument tying these pieces to the
    sleep-set / ample-set machinery. *)

open Tsim
open Tsim.Ids

(** One scheduler choice (mirrored by {!Explore.move}). [Crash (p, k)]
    injects a crash fault committing a [k]-entry buffer prefix
    ({!Machine.crash}); [Recover p] restarts a crashed process;
    [Abort p] cancels an acquisition attempt at a declared wait point
    ({!Machine.abort}). *)
type move =
  | Step of Pid.t
  | Commit of Pid.t
  | Commit_var of Pid.t * Var.t
  | Crash of Pid.t * int
  | Recover of Pid.t
  | Abort of Pid.t

val move_pid : move -> Pid.t

(** Over-approximate footprint of a move in a given state. Fields are
    mutable solely so {!of_move_into} can refill a scratch record without
    allocating; treat values as immutable unless you own the scratch. *)
type t = {
  mutable pid : Pid.t;
  mutable reads : int;  (** bitset of shared variables read from memory *)
  mutable writes : int;  (** bitset of shared variables written *)
  mutable cs_check : bool;
      (** CS execution: reads every process's CS-enabledness *)
  mutable may_enable_cs : bool;
      (** may change the owner's CS-enabledness *)
  mutable budget : bool;
      (** consumes the shared crash budget; any two budget-consuming
          moves are dependent (one can disable the other) *)
  mutable global : bool;  (** conservative fallback: dependent on everything *)
}

val of_move : Machine.t -> move -> t
(** Footprint of [mv] in machine state [m], computed without executing
    it. Only meaningful for enabled moves; disabled ones get conservative
    answers. *)

val make_scratch : unit -> t
(** A scratch record for {!of_move_into} (initially an empty local
    footprint of pid 0). *)

val of_move_into : t -> Machine.t -> move -> unit
(** [of_move_into f m mv] computes [of_move m mv] into [f] in place,
    allocating nothing (explorer hot path). The previous contents of [f]
    are overwritten; results from earlier fills must not be read after a
    refill. *)

val independent : t -> t -> bool
(** Sound commutation check: [independent a b] implies the two moves are
    enabled-preserving and commute up to the explorer's fingerprint
    projection, and neither can mask or cause a violation of the other.
    Moves of the same process are never independent. *)

val purely_local : t -> bool
(** No shared-variable access, no CS check, not global — the candidate
    class for singleton ample sets. [may_enable_cs] may still hold; the
    explorer validates that post hoc on the successor state. *)

(** {1 Dense move encoding}

    Sleep sets are one-word bitsets over move codes
    [pid * stride + slot]. Configurations whose move space exceeds a
    word are flagged unencodable and run without sleep sets. *)

type codec = {
  stride : int;
  total_bits : int;
  encodable : bool;
  crashes : bool;  (** stride widened to cover Crash/Recover slots *)
  aborts : bool;  (** stride widened by one trailing Abort slot *)
}

val codec_of_config : ?crashes:bool -> ?aborts:bool -> Config.t -> codec
(** [~crashes:true] (default [false]) reserves code slots for [Recover]
    and every [Crash] prefix length; [~aborts:true] (default [false])
    reserves one more for [Abort]. Fault-free explorations keep the
    narrow stride so their encodability is unchanged. {!encode} raises
    [Invalid_argument] on a fault move against a codec without its
    slots. *)

val encode : codec -> move -> int
val decode : codec -> int -> move
val full_mask : codec -> int
(** Mask with one bit per encodable move; only valid when [encodable]. *)

val iter_mask : codec -> (int -> move -> unit) -> int -> unit
(** Apply [f code move] to every set bit of a sleep mask. *)
