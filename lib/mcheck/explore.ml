(* Bounded exhaustive schedule exploration.

   Explores EVERY scheduler decision sequence of a configuration up to a
   node budget: at each state the enabled moves are "let process p execute
   its next event" and "commit p's oldest buffered write" (the TSO
   adversary's full power; under PSO also any out-of-order commit).
   Reports exclusion violations (with the offending schedule), deadlocks
   (unfinished processes with no productive move), and whether the space
   was exhausted within budget.

   This is what makes the Laws-of-Order premise checkable here: removing
   the fence from a read/write mutex must produce a reachable exclusion
   violation, and the explorer exhibits the schedule (experiment E12).

   The hot path is tuned for throughput (see DESIGN.md "Exploration
   performance"): machines run with [record_trace = false] so clones are
   O(state); states are fingerprinted by an allocation-free FNV-1a hash
   over packed ints instead of a built string; and [~domains:k] fans the
   root frontier out over OCaml 5 domains. *)

open Tsim
open Tsim.Ids

type move = Step of Pid.t | Commit of Pid.t | Commit_var of Pid.t * Var.t

let move_to_string = function
  | Step p -> Printf.sprintf "step %s" (Pid.to_string p)
  | Commit p -> Printf.sprintf "commit %s" (Pid.to_string p)
  | Commit_var (p, v) ->
      Printf.sprintf "commit %s v%d" (Pid.to_string p) (Var.to_int v)

type violation = {
  schedule : move list;  (* the decision sequence reaching the bug *)
  kind : [ `Exclusion of Pid.t * Pid.t | `Deadlock | `Spin_exhausted ];
}

type result = {
  nodes : int;  (* states expanded *)
  exhausted : bool;  (* the whole space was explored within budget *)
  verified : bool;  (* exhausted with no violations *)
  violations : violation list;
  max_depth : int;
}

let enabled_moves m =
  let n = Machine.n_procs m in
  let pso = (Machine.config m).Config.ordering = Config.Pso in
  let moves = ref [] in
  for p = n - 1 downto 0 do
    (match Machine.pending m p with
    | Machine.P_done -> ()
    | _ -> moves := Step p :: !moves);
    (* explicit commits: under TSO only the oldest write may commit (and
       only outside fences — inside, Step already commits); under PSO the
       adversary may commit ANY buffered write at any time *)
    let pr = Machine.proc m p in
    if pso then
      List.iter
        (fun v -> moves := Commit_var (p, v) :: !moves)
        (Wbuf.vars pr.Machine.buf)
    else if (not pr.Machine.in_fence) && not (Wbuf.is_empty pr.Machine.buf)
    then moves := Commit p :: !moves
  done;
  !moves

let apply m = function
  | Step p -> ignore (Machine.step m p)
  | Commit p -> ignore (Machine.commit m p)
  | Commit_var (p, v) -> ignore (Machine.commit_var m p v)

(* --- fingerprinting --------------------------------------------------- *)

(* FNV-1a over the packed machine state, one native int at a time. No
   intermediate string or array is materialized: per-node fingerprint cost
   is a handful of multiplies, versus the seed engine's Buffer + Printf
   construction which dominated its profile. *)
let fnv_prime = 0x100000001b3
let fnv_basis = 0x0bf29ce484222325 (* 64-bit FNV basis truncated to 63-bit int *)

let[@inline] mix h x = (h lxor x) * fnv_prime

(* Continuations are hashed structurally. [Hashtbl.hash] stops after 10
   meaningful nodes, which conflates deep spin states; raise both the
   meaningful and total traversal bounds so distinct continuation shapes
   (different spin fuels, loop indices, captured reads) hash apart. *)
let hash_cont c = Hashtbl.hash_param 128 256 c

let pending_code (p : Machine.pending) h =
  match p with
  | Machine.P_enter -> mix h 1
  | Machine.P_cs -> mix h 2
  | Machine.P_exit -> mix h 3
  | Machine.P_done -> mix h 4
  | Machine.P_read v -> mix (mix h 5) v
  | Machine.P_issue_write (v, x) -> mix (mix (mix h 6) v) x
  | Machine.P_begin_fence -> mix h 7
  | Machine.P_end_fence -> mix h 8
  | Machine.P_commit v -> mix (mix h 9) v
  | Machine.P_rmw_fence -> mix h 10
  | Machine.P_cas (v, e, d) -> mix (mix (mix (mix h 11) v) e) d
  | Machine.P_faa (v, d) -> mix (mix (mix h 12) v) d
  | Machine.P_swap (v, x) -> mix (mix (mix h 13) v) x

let fingerprint m =
  let n = Machine.n_procs m in
  let layout = (Machine.config m).Config.layout in
  let h = ref fnv_basis in
  for v = 0 to Layout.size layout - 1 do
    h := mix !h (Machine.mem_value m v)
  done;
  for p = 0 to n - 1 do
    let pr = Machine.proc m p in
    h := pending_code (Machine.pending m p) !h;
    h := mix !h (if pr.Machine.in_fence then 1 else 0);
    (* section + completed passages: cheap, and strictly finer than the
       seed scheme (two states that agree on everything else but differ
       in remaining passages behave differently) *)
    h :=
      mix !h
        (match pr.Machine.sec with
        | Machine.Ncs -> 0
        | Machine.Entry -> 1
        | Machine.Exiting -> 2
        | Machine.Finished -> 3);
    h := mix !h pr.Machine.passages;
    h := mix !h (hash_cont pr.Machine.cont);
    Wbuf.iter
      (fun e -> h := mix (mix !h e.Wbuf.var) e.Wbuf.value)
      pr.Machine.buf
  done;
  !h

(* --- search core ------------------------------------------------------ *)

exception Done

(* Mutable search state. One [ctx] per domain: the seen table, node
   budget and violation cap are all domain-local, so parallel search
   needs no synchronization. *)
type ctx = {
  seen : (int, unit) Hashtbl.t;
  dedup : bool;
  on_spin : [ `Prune | `Violation ];
  max_nodes : int;
  max_violations : int;
  mutable nodes : int;
  mutable max_depth : int;
  mutable nviol : int;  (* = List.length violations, kept O(1) *)
  mutable violations : violation list;  (* newest first *)
}

let make_ctx ?(seen = Hashtbl.create 4096) ~dedup ~on_spin ~max_nodes
    ~max_violations () =
  { seen; dedup; on_spin; max_nodes; max_violations; nodes = 0;
    max_depth = 0; nviol = 0; violations = [] }

let record_violation ctx schedule kind =
  ctx.nviol <- ctx.nviol + 1;
  ctx.violations <- { schedule = List.rev schedule; kind } :: ctx.violations;
  if ctx.nviol >= ctx.max_violations then raise Done

(* Expand one state: count it, then either diagnose a dead end or visit
   each enabled move through [child]. The deadlock scan is only run when
   there are no moves — it is O(n) and pointless otherwise. *)
let expand ctx m schedule depth ~child =
  if ctx.nodes >= ctx.max_nodes then raise Done;
  ctx.nodes <- ctx.nodes + 1;
  if depth > ctx.max_depth then ctx.max_depth <- depth;
  let moves = enabled_moves m in
  if moves = [] then begin
    let n = Machine.n_procs m in
    let unfinished = ref false in
    for p = 0 to n - 1 do
      if Machine.pending m p <> Machine.P_done then unfinished := true
    done;
    if !unfinished then record_violation ctx schedule `Deadlock
  end
  else
    List.iter
      (fun mv ->
        let m' = Machine.clone m in
        match apply m' mv with
        | () ->
            let skip =
              ctx.dedup
              &&
              let fp = fingerprint m' in
              if Hashtbl.mem ctx.seen fp then true
              else begin
                Hashtbl.replace ctx.seen fp ();
                false
              end
            in
            if not skip then child m' (mv :: schedule) (depth + 1)
        | exception Machine.Exclusion_violation { holder; intruder } ->
            record_violation ctx (mv :: schedule)
              (`Exclusion (holder, intruder))
        | exception Prog.Spin_exhausted _ -> (
            match ctx.on_spin with
            | `Prune -> ()
            | `Violation -> record_violation ctx (mv :: schedule)
                              `Spin_exhausted))
      moves

let rec dfs ctx m schedule depth =
  expand ctx m schedule depth ~child:(dfs ctx)

(* --- parallel driver -------------------------------------------------- *)

(* Expand breadth-first from the root until at least [target] pending
   states exist (or the space is exhausted / a violation cap fires).
   Returns the pending frontier in deterministic (BFS) order. *)
let bfs_frontier ctx m0 ~target =
  let pending = Queue.create () in
  Queue.add (m0, [], 0) pending;
  while Queue.length pending > 0 && Queue.length pending < target do
    let m, schedule, depth = Queue.pop pending in
    expand ctx m schedule depth ~child:(fun m' sched d ->
        Queue.add (m', sched, d) pending)
  done;
  List.of_seq (Queue.to_seq pending)

(* Split [items] round-robin into [k] buckets, tagging each item with its
   global frontier index so merged results are deterministic. *)
let round_robin k items =
  let buckets = Array.make k [] in
  List.iteri
    (fun i item -> buckets.(i mod k) <- (i, item) :: buckets.(i mod k))
    items;
  Array.map List.rev buckets

let result_of_ctx ctx ~exhausted =
  {
    nodes = ctx.nodes;
    exhausted;
    verified = exhausted && ctx.violations = [];
    violations = List.rev ctx.violations;
    max_depth = ctx.max_depth;
  }

(* Per-domain worker: run each assigned frontier state to completion with
   a domain-local seen table seeded from the BFS prefix. Violations are
   tagged (frontier index, discovery order) for the deterministic merge. *)
let domain_worker ~seen ~dedup ~on_spin ~max_nodes ~max_violations starts =
  let ctx = make_ctx ~seen ~dedup ~on_spin ~max_nodes ~max_violations () in
  let tagged = ref [] in
  (* drain the ctx's accumulator between starts so each violation carries
     the frontier index of the start that reached it *)
  let drain idx =
    List.iteri
      (fun j v -> tagged := ((idx, j), v) :: !tagged)
      (List.rev ctx.violations);
    ctx.violations <- []
  in
  let exhausted =
    try
      List.iter
        (fun (idx, (m, schedule, depth)) ->
          match dfs ctx m schedule depth with
          | () -> drain idx
          | exception Done ->
              drain idx;
              raise Done)
        starts;
      true
    with Done -> false
  in
  (ctx.nodes, ctx.max_depth, exhausted, List.rev !tagged)

let explore_parallel ~domains ~max_nodes ~max_violations ~dedup ~on_spin cfg =
  let ctx =
    make_ctx ~dedup ~on_spin ~max_nodes ~max_violations ()
  in
  match bfs_frontier ctx (Machine.create cfg) ~target:(domains * 8) with
  | [] -> result_of_ctx ctx ~exhausted:true  (* space smaller than frontier *)
  | exception Done -> result_of_ctx ctx ~exhausted:false
  | frontier ->
      let k = min domains (List.length frontier) in
      let buckets = round_robin k frontier in
      let budget_left = max 0 (max_nodes - ctx.nodes) in
      let share = budget_left / k and extra = budget_left mod k in
      let spawned =
        Array.mapi
          (fun d bucket ->
            let seen = Hashtbl.copy ctx.seen in
            let max_nodes = share + (if d = 0 then extra else 0) in
            Domain.spawn (fun () ->
                domain_worker ~seen ~dedup ~on_spin ~max_nodes
                  ~max_violations bucket))
          buckets
      in
      let parts = Array.map Domain.join spawned in
      let nodes = Array.fold_left (fun a (n, _, _, _) -> a + n) ctx.nodes parts in
      let max_depth =
        Array.fold_left (fun a (_, d, _, _) -> max a d) ctx.max_depth parts
      in
      let exhausted =
        Array.for_all (fun (_, _, e, _) -> e) parts
      in
      let tagged =
        Array.to_list parts
        |> List.concat_map (fun (_, _, _, t) -> t)
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let merged =
        List.rev ctx.violations
        @ List.map snd tagged
      in
      let violations =
        List.filteri (fun i _ -> i < max_violations) merged
      in
      {
        nodes;
        exhausted;
        verified = exhausted && violations = [];
        violations;
        max_depth;
      }

(* --- public entry points ---------------------------------------------- *)

(* [dedup] prunes states with identical fingerprints. The fingerprint
   covers shared memory, every buffer, section / passage counts,
   cache-relevant pending state and a structural hash of each continuation
   (which includes spin fuel counters), all folded into one 63-bit FNV-1a
   value — pruning is exact up to hash collisions, so verification results
   are "no violation in the full deduplicated space", a high-confidence
   check rather than a proof.

   [on_spin] decides what spin-fuel exhaustion means: [`Prune] (default)
   abandons the branch — sound for exclusion checking because spin
   re-reads do not change shared state, so longer spins revisit the same
   choice points — while [`Violation] reports it (livelock hunting). *)
(* [spin_fuel] temporarily lowers [Prog.default_spin_fuel] so algorithm
   busy-waits stay shallow during exploration. *)
let explore ?(max_nodes = 500_000) ?(max_violations = 1) ?(dedup = true)
    ?(on_spin = `Prune) ?(spin_fuel = 6) ?(record_trace = false)
    ?(domains = 1) (cfg : Config.t) : result =
  if domains < 1 then invalid_arg "Explore.explore: domains must be >= 1";
  let cfg = { cfg with Config.record_trace } in
  let saved_fuel = !Prog.default_spin_fuel in
  Prog.default_spin_fuel := spin_fuel;
  Fun.protect ~finally:(fun () -> Prog.default_spin_fuel := saved_fuel)
  @@ fun () ->
  if domains > 1 then
    explore_parallel ~domains ~max_nodes ~max_violations ~dedup ~on_spin cfg
  else begin
    let ctx = make_ctx ~dedup ~on_spin ~max_nodes ~max_violations () in
    let exhausted =
      try
        dfs ctx (Machine.create cfg) [] 0;
        true
      with Done -> false
    in
    result_of_ctx ctx ~exhausted
  end

(* Replay a violating schedule on a fresh machine, for display. Uses the
   caller's configuration unchanged (trace recording on by default), so
   the replayed machine's trace is renderable. *)
let replay_schedule (cfg : Config.t) (schedule : move list) =
  let m = Machine.create cfg in
  (try List.iter (apply m) schedule with
  | Machine.Exclusion_violation _ | Prog.Spin_exhausted _ -> ());
  m
