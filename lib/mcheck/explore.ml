(* Bounded exhaustive schedule exploration.

   Explores EVERY scheduler decision sequence of a configuration up to a
   node budget: at each state the enabled moves are "let process p execute
   its next event" and "commit p's oldest buffered write" (the TSO
   adversary's full power; under PSO also any out-of-order commit).
   Reports exclusion violations (with the offending schedule), deadlocks
   (unfinished processes with no productive move), and whether the space
   was exhausted within budget.

   This is what makes the Laws-of-Order premise checkable here: removing
   the fence from a read/write mutex must produce a reachable exclusion
   violation, and the explorer exhibits the schedule (experiment E12).

   The hot path is tuned for throughput (see DESIGN.md "Exploration
   performance"): machines run with [record_trace = false] so clones are
   O(state); states are fingerprinted by an allocation-free FNV-1a hash
   over packed ints instead of a built string; and [~domains:k] fans the
   root frontier out over OCaml 5 domains, which share one lock-free
   fingerprint store ({!Fpstore}) and load-balance through Chase–Lev
   work-stealing deques ({!Deque}) — see DESIGN.md §5f.

   On top of that sits a dynamic partial-order reduction (on by default,
   [~por:false] to disable), combining three classic ingredients over the
   independence relation of {!Footprint}:

   - singleton ample sets: when some process's only enabled move is a
     purely-local step (no shared access, no CS check), that move is
     globally independent, so exploring it alone covers every
     interleaving — the other processes' moves commute past it. This is
     what shrinks the *state space*: interleavings of local steps with
     remote progress are never generated.

   - sleep sets: after exploring move [a] at a state, sibling subtrees
     need not re-explore executions starting with [a]-then-independent
     prefixes; [a] is put to sleep in each later sibling's subtree until
     a dependent move wakes it (drops it from the set).

   - mask-aware state caching: the seen-table maps each fingerprint to
     the sleep mask it was explored with. A revisit with sleep [z] against
     a stored [z'] prunes when [z' ⊆ z] (everything the revisit would do
     was done), and otherwise re-explores only the missing moves (sleep
     [z ∪ ¬z']) while storing [z ∩ z']. With POR off (or a move space too
     large to encode in a word) all masks are 0 and this degenerates to
     exactly the plain fingerprint dedup of the previous engine.

   See explore.mli for the soundness argument. *)

open Tsim
open Tsim.Ids

type move = Footprint.move =
  | Step of Pid.t
  | Commit of Pid.t
  | Commit_var of Pid.t * Var.t
  | Crash of Pid.t * int
  | Recover of Pid.t
  | Abort of Pid.t

let move_to_string = function
  | Step p -> Printf.sprintf "step %s" (Pid.to_string p)
  | Commit p -> Printf.sprintf "commit %s" (Pid.to_string p)
  | Commit_var (p, v) ->
      Printf.sprintf "commit %s v%d" (Pid.to_string p) (Var.to_int v)
  | Crash (p, 0) -> Printf.sprintf "crash %s" (Pid.to_string p)
  | Crash (p, k) -> Printf.sprintf "crash %s %d" (Pid.to_string p) k
  | Recover p -> Printf.sprintf "recover %s" (Pid.to_string p)
  | Abort p -> Printf.sprintf "abort %s" (Pid.to_string p)

(* Inverse of [move_to_string]. Tolerates surrounding whitespace but is
   otherwise strict: pids are "p<i>", variables "v<i>", both >= 0; a
   crash's commit-prefix length is a bare non-negative int (omitted when
   zero). *)
let move_of_string s =
  let int_after prefix tok =
    if String.length tok >= 2 && tok.[0] = prefix then
      match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
      | Some i when i >= 0 -> Some i
      | _ -> None
    else None
  in
  let nat tok =
    match int_of_string_opt tok with
    | Some i when i >= 0 -> Some i
    | _ -> None
  in
  let words =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "step"; p ] ->
      Option.map (fun p -> Step (Pid.of_int p)) (int_after 'p' p)
  | [ "commit"; p ] ->
      Option.map (fun p -> Commit (Pid.of_int p)) (int_after 'p' p)
  | [ "commit"; p; v ] -> (
      match (int_after 'p' p, int_after 'v' v) with
      | Some p, Some v -> Some (Commit_var (Pid.of_int p, Var.of_int v))
      | _ -> None)
  | [ "crash"; p ] ->
      Option.map (fun p -> Crash (Pid.of_int p, 0)) (int_after 'p' p)
  | [ "crash"; p; k ] -> (
      match (int_after 'p' p, nat k) with
      | Some p, Some k -> Some (Crash (Pid.of_int p, k))
      | _ -> None)
  | [ "recover"; p ] ->
      Option.map (fun p -> Recover (Pid.of_int p)) (int_after 'p' p)
  | [ "abort"; p ] ->
      Option.map (fun p -> Abort (Pid.of_int p)) (int_after 'p' p)
  | _ -> None

(* --- schedule (de)serialization --------------------------------------- *)

(* One move per line; '#' comments and blank lines are ignored on input so
   corpus fixtures can carry provenance headers. *)

let schedule_to_string schedule =
  String.concat "" (List.map (fun mv -> move_to_string mv ^ "\n") schedule)

let schedule_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let body =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        if String.trim body = "" then go acc (lineno + 1) rest
        else
          match move_of_string body with
          | Some mv -> go (mv :: acc) (lineno + 1) rest
          | None ->
              Error
                (Printf.sprintf "line %d: unparsable move %S" lineno
                   (String.trim body)))
  in
  go [] 1 lines

let save_schedule file schedule =
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (schedule_to_string schedule))

let load_schedule file =
  match In_channel.with_open_text file In_channel.input_all with
  | text -> schedule_of_string text
  | exception Sys_error msg -> Error msg

type violation = {
  schedule : move list;  (* the decision sequence reaching the bug *)
  kind : [ `Exclusion of Pid.t * Pid.t | `Deadlock | `Spin_exhausted ];
}

type partial_reason = [ `Nodes | `Millis | `Violations | `Aborts ]

let partial_reason_name = function
  | `Nodes -> "node budget"
  | `Millis -> "time budget"
  | `Violations -> "violation cap"
  | `Aborts -> "abort request (interrupt)"

(* Search-internals accounting, kept as plain int bumps on the hot path
   (a handful of increments against a ~2µs/node budget) and surfaced both
   in the result and — at heartbeat granularity — through the telemetry
   hub. *)
type stats = {
  dedup_hits : int;  (* revisits pruned by the seen store *)
  resleeps : int;  (* mask-aware re-explorations of a seen state *)
  sleep_prunes : int;  (* moves skipped because asleep *)
  ample_chains : int;  (* singleton-ample selections (chains started) *)
  ample_fused : int;  (* local moves fused through those chains *)
  seen_entries : int;  (* seen-store occupancy (shared store: global) *)
  crashes_applied : int;  (* crash moves executed *)
  aborts_applied : int;  (* abort moves executed *)
  domains_used : int;
  domain_nodes : int list;  (* per-domain node counts, domain order *)
  merge_stall_us : int;
      (* parallel mode: idle window between the first and last domain
         finishing — load-imbalance cost paid at the join barrier *)
  journal_peak : int;
      (* journal engine: high-water undo-log depth (max over domains) *)
  undo_records : int;  (* journal engine: total undo records pushed *)
  steals : int;  (* parallel mode: work items taken from other domains *)
  store_evictions : int;  (* bounded store: states evicted under pressure *)
  store_drops : int;  (* shared store: states left unstored (window full) *)
  omission_prob : float;
      (* bitstate store: estimated probability that the next distinct
         state falsely aliases as seen — (ones/m)^k at final fill *)
  est_nodes : float;
      (* Knuth-probe estimate of the explored tree's node count; 0 when
         the estimator was off. Parallel: exact BFS-seed nodes plus the
         sum of the per-item worker estimates. *)
  est_progress : float;
      (* fraction of the tree fully explored, by probe probability mass
         (reaches ~1.0 on exhaustion); 0 when the estimator was off *)
}

let zero_stats =
  { dedup_hits = 0; resleeps = 0; sleep_prunes = 0; ample_chains = 0;
    ample_fused = 0; seen_entries = 0; crashes_applied = 0;
    aborts_applied = 0; domains_used = 1;
    domain_nodes = []; merge_stall_us = 0; journal_peak = 0;
    undo_records = 0; steals = 0; store_evictions = 0; store_drops = 0;
    omission_prob = 0.0; est_nodes = 0.0; est_progress = 0.0 }

type result = {
  nodes : int;  (* states expanded *)
  exhausted : bool;  (* the whole space was explored within budget *)
  verified : bool;  (* exhausted with no violations *)
  violations : violation list;
  max_depth : int;
  partial : partial_reason option;
      (* why the search stopped early, when it did ([None] iff exhausted) *)
  stats : stats;
}

(* One-line verdict + exit code for front ends: 0 verified, 1 violations
   found, 3 partial (budget exhausted with nothing found — NOT a
   verification; conflating it with exit 0 was a CLI bug). A "verified"
   whose coverage is qualified — bitstate aliasing, or an exact store
   that saturated and fell back to re-exploration — carries the
   confession on the verdict line itself, not only in --search-stats. *)
let render_verdict r =
  if r.verified then
    ( "VERIFIED: no exclusion violation or deadlock in the full \
       (deduplicated) schedule space"
      ^ (if r.stats.omission_prob > 0.0 then
           Printf.sprintf
             " (bitstate: distinct states may have aliased, omission \
              probability %.2e)"
             r.stats.omission_prob
         else "")
      ^
      (if r.stats.store_drops > 0 then
         Printf.sprintf
           " (seen store saturated: %d states never stored, re-explored \
            on every visit — consider --store bounded)"
           r.stats.store_drops
       else ""),
      0 )
  else if r.violations <> [] then
    let kind_name = function
      | `Exclusion _ -> "exclusion violation"
      | `Deadlock -> "deadlock"
      | `Spin_exhausted -> "spin exhaustion"
    in
    let first =
      match r.violations with v :: _ -> kind_name v.kind | [] -> "?"
    in
    ( Printf.sprintf "VIOLATION: %d found in %d states (first: %s)"
        (List.length r.violations) r.nodes first,
      1 )
  else
    let reason =
      match r.partial with
      | Some reason -> partial_reason_name reason
      | None -> "search interruption"
    in
    ( Printf.sprintf
        "PARTIAL: stopped by %s after %d states with no violation found — \
         not a verification"
        reason r.nodes,
      3 )

(* Move values are immutable, so the ubiquitous [Step p] / [Commit p] /
   [Recover p] boxes are shared across calls (and domains) instead of
   being re-allocated by every [enabled_moves]; [Commit_var] and [Crash]
   carry state-dependent payloads and stay per-call. *)
let boxed_pids = 64
let step_box = Array.init boxed_pids (fun p -> Step (Pid.of_int p))
let commit_box = Array.init boxed_pids (fun p -> Commit (Pid.of_int p))
let recover_box = Array.init boxed_pids (fun p -> Recover (Pid.of_int p))
let abort_box = Array.init boxed_pids (fun p -> Abort (Pid.of_int p))
let[@inline] step_move p = if p < boxed_pids then step_box.(p) else Step p

let[@inline] commit_move p =
  if p < boxed_pids then commit_box.(p) else Commit p

let[@inline] recover_move p =
  if p < boxed_pids then recover_box.(p) else Recover p

let[@inline] abort_move p = if p < boxed_pids then abort_box.(p) else Abort p

let enabled_moves ?(max_crashes = 0) ?(max_aborts = 0) m =
  let n = Machine.n_procs m in
  let pso = (Machine.config m).Config.ordering = Config.Pso in
  let budget_left = Machine.crashes_total m < max_crashes in
  let abort_left = Machine.aborts_total m < max_aborts in
  let semantics = (Machine.config m).Config.crash_semantics in
  let moves = ref [] in
  for p = n - 1 downto 0 do
    (match Machine.pending_class m p with
    | Machine.K_done -> ()
    | Machine.K_recover -> moves := recover_move p :: !moves
    | _ ->
        moves := step_move p :: !moves;
        (* abort faults: only at declared wait points, while budget
           remains and the configuration is abortable *)
        if abort_left && Machine.abort_deliverable m p then
          moves := abort_move p :: !moves;
        (* crash faults, while budget remains: the prefix length is the
           adversary's choice under Atomic_prefix, forced otherwise *)
        if budget_left then begin
          let size = Wbuf.size (Machine.proc m p).Machine.buf in
          match semantics with
          | Config.Drop_buffer -> moves := Crash (p, 0) :: !moves
          | Config.Flush_buffer -> moves := Crash (p, size) :: !moves
          | Config.Atomic_prefix ->
              for k = size downto 0 do
                moves := Crash (p, k) :: !moves
              done
        end);
    (* explicit commits: under TSO only the oldest write may commit (and
       only outside fences — inside, Step already commits); under PSO the
       adversary may commit ANY buffered write at any time *)
    let pr = Machine.proc m p in
    if pso then
      List.iter
        (fun v -> moves := Commit_var (p, v) :: !moves)
        (Wbuf.vars pr.Machine.buf)
    else if (not pr.Machine.in_fence) && not (Wbuf.is_empty pr.Machine.buf)
    then moves := commit_move p :: !moves
  done;
  !moves

let apply m = function
  | Step p -> ignore (Machine.step m p)
  | Commit p -> ignore (Machine.commit m p)
  | Commit_var (p, v) -> ignore (Machine.commit_var m p v)
  | Crash (p, k) -> ignore (Machine.crash ~commit_prefix:k m p)
  | Abort p -> ignore (Machine.abort m p)
  | Recover p ->
      if Machine.pending m p <> Machine.P_recover then
        invalid_arg
          (Printf.sprintf "recover %s: process is not crashed"
             (Pid.to_string p));
      ignore (Machine.step m p)

(* --- profiling axes ---------------------------------------------------- *)

(* The profiler's move-class axis: one dense code per transition kind
   plus a synthetic class for the root node. Order is frozen — profile
   JSONs and the folded-stack export name cells by it. *)
let cls_step = 0
let cls_root = 5

let move_class = function
  | Step _ -> cls_step
  | Commit _ | Commit_var _ -> 1
  | Crash _ -> 2
  | Recover _ -> 3
  | Abort _ -> 4

let profile_classes =
  [| "step"; "commit"; "crash"; "recover"; "abort"; "root" |]

let profile_sections =
  [| Machine.section_name Machine.Ncs;
     Machine.section_name Machine.Entry;
     Machine.section_name Machine.Exiting;
     Machine.section_name Machine.Finished;
     Machine.section_name Machine.Crashed;
     Machine.section_name Machine.Aborting |]

let new_profile ?every () =
  Obs.Profile.create ?every ~classes:profile_classes
    ~sections:profile_sections ()

(* The sampling stride front ends (CLI verify --profile, bench
   --profile) attach profiles with: strided statistical attribution,
   cheap enough to leave on (the ≤5% overhead contract is asserted
   against this configuration in the bench). Exact attribution stays
   available with [new_profile ~every:1]. *)
let default_profile_every = 16

(* RMR classification of a move, read in the PRE-state (the footprint of
   what the move is about to touch). Search machines run lean, which
   freezes the cache-state RMR accounting — but [Machine.is_remote] is
   purely layout-based (DSM-style home cells), so remoteness stays
   computable: this is DSM-model RMR attribution, one event when the
   touched variable's home is not the mover's segment. Commits charge
   the committed write's destination; crash/recover/abort moves touch no
   shared variable themselves. *)
let move_rmr m = function
  | Step p ->
      let fp = Machine.step_footprint_packed m p in
      let tag = fp land 7 in
      (* 2 = read, 3 = write, 4 = rmw carry a variable *)
      if tag >= 2 && tag <= 4 && Machine.is_remote m p (Var.of_int (fp lsr 3))
      then 1
      else 0
  | Commit p ->
      let buf = (Machine.proc m p).Machine.buf in
      if (not (Wbuf.is_empty buf)) && Machine.is_remote m p (Wbuf.peek_var buf)
      then 1
      else 0
  | Commit_var (p, v) -> if Machine.is_remote m p v then 1 else 0
  | Crash _ | Recover _ | Abort _ -> 0

(* --- fingerprinting --------------------------------------------------- *)

(* The fingerprint lives in {!Machine} since PR 5: a packed 63-bit XOR
   fold of per-variable Zobrist terms and per-process terms, chosen so
   the journal engine can maintain it incrementally from undo records
   (O(1) per memory write plus one process-term refresh per event). The
   state abstraction is unchanged — memory, pending events, sections,
   passage/crash counts, continuations, buffered writes. *)
let fingerprint = Machine.fingerprint

(* --- search core ------------------------------------------------------ *)

exception Done

(* Open-addressing fingerprint -> sleep-mask table for the sequential
   seen store. Fingerprints are already finalizer-mixed 63-bit values
   (always >= 0, see {!Machine.fingerprint}), so the raw low bits probe
   well and -1 can mark empty slots. Replaces [Hashtbl]: no 4-word entry
   allocation per insert, no bucket-list chasing per lookup — the
   admission probe is one or two cache lines. *)
module Seenmap = struct
  type t = {
    mutable keys : int array;  (* -1 = empty; fingerprints are >= 0 *)
    mutable vals : int array;  (* sleep mask last explored under *)
    mutable mask : int;  (* capacity - 1; capacity a power of two *)
    mutable count : int;
  }

  let create () =
    { keys = Array.make 1024 (-1); vals = Array.make 1024 0;
      mask = 1023; count = 0 }

  let length t = t.count

  (* Slot holding [fp], or the empty slot where it belongs (linear
     probing; load factor capped at 1/2 so the scan terminates fast). *)
  let rec probe keys mask fp i =
    let k = Array.unsafe_get keys i in
    if k = fp || k < 0 then i else probe keys mask fp ((i + 1) land mask)

  let[@inline] lookup t fp = probe t.keys t.mask fp (fp land t.mask)
  let[@inline] key t i = Array.unsafe_get t.keys i
  let[@inline] value t i = Array.unsafe_get t.vals i
  let[@inline] set_value t i z = Array.unsafe_set t.vals i z

  let grow t =
    let ncap = 2 * (t.mask + 1) in
    let keys = Array.make ncap (-1) and vals = Array.make ncap 0 in
    let nmask = ncap - 1 in
    let okeys = t.keys and ovals = t.vals in
    for i = 0 to Array.length okeys - 1 do
      let k = Array.unsafe_get okeys i in
      if k >= 0 then begin
        let j = probe keys nmask k (k land nmask) in
        Array.unsafe_set keys j k;
        Array.unsafe_set vals j (Array.unsafe_get ovals i)
      end
    done;
    t.keys <- keys;
    t.vals <- vals;
    t.mask <- nmask

  (* [i] must be the empty slot [lookup] returned for [fp]. *)
  let insert t i fp z =
    Array.unsafe_set t.keys i fp;
    Array.unsafe_set t.vals i z;
    t.count <- t.count + 1;
    if 2 * t.count > t.mask then grow t
end

(* Seen-state memory. The sequential default is the mask-aware hash
   table (fingerprint -> sleep mask last explored under). Parallel
   search — and the memory-bounded modes at any domain count — use the
   shared lock-free store instead ({!Fpstore}), which expresses the same
   rule as atomic claims on a per-state "remaining moves" word. *)
type seen_store =
  | Seen_tbl of Seenmap.t
  | Seen_shared of Fpstore.t

(* Mutable search state, one [ctx] per domain. Violation caps and tallies
   are domain-local; the seen store and the node-budget pool (parallel
   mode) are the only shared structures.

   [quota] is the locally claimed slice of the node budget; when it runs
   out the ctx claims another chunk from [pool] (CAS), or stops when
   [pool] is [None] (sequential: quota IS the budget) or drained.

   [delegate] is installed by parallel workers: called with a successor
   state that has just been admitted by the seen store, it may park the
   subtree on the worker's deque (for thieves to steal) instead of
   recursing. *)
type ctx = {
  seen : seen_store;
  dedup : bool;
  por : bool;
  codec : Footprint.codec;
  sleepable : bool;  (* por && codec.encodable *)
  paranoid : bool;  (* cross-check incremental fingerprints per node *)
  on_fingerprint : (int -> unit) option;
  on_spin : [ `Prune | `Violation ];
  pool : int Atomic.t option;  (* parallel mode: shared budget pool *)
  max_violations : int;
  max_crashes : int;  (* crash faults the adversary may inject, total *)
  max_aborts : int;  (* abort faults the adversary may inject, total *)
  stop : bool Atomic.t option;
      (* external interrupt flag (SIGINT): polled with the deadline;
         raises the typed `Aborts partial verdict instead of dying *)
  deadline : float option;  (* absolute wall-clock cutoff *)
  obs : Obs.Telemetry.t;  (* Telemetry.null when no sink is attached *)
  decoded : move array;
      (* [decode codec] memoized per code — sleeping moves are revisited
         every [filter_sleep], and decoding allocates *)
  fp_a : Footprint.t;  (* scratch footprints for {!Footprint.of_move_into} *)
  fp_b : Footprint.t;
  mutable quota : int;  (* locally claimed node budget remaining *)
  mutable pid_counts : int array;
      (* scratch for [singleton_ample]'s per-pid move tally, grown on
         demand — the explorer's only per-node [Array.make] was here *)
  mutable delegate :
    (must_clone:bool -> Machine.t -> move list -> int -> int -> bool) option;
  mutable nodes : int;
  mutable max_depth : int;
  mutable nviol : int;  (* = List.length violations, kept O(1) *)
  mutable violations : violation list;  (* newest first *)
  mutable stopped : partial_reason option;  (* why Done was raised *)
  (* search-internals tallies (see [stats]) *)
  mutable c_dedup : int;
  mutable c_resleeps : int;
  mutable c_sleep_prunes : int;
  mutable c_chains : int;
  mutable c_fused : int;
  mutable c_crashes : int;
  mutable c_aborts : int;
  mutable c_jpeak : int;  (* journal engine: max undo-log depth *)
  mutable c_jrecords : int;  (* journal engine: undo records pushed *)
  mutable c_steals : int;  (* work items stolen from other domains *)
  (* heartbeat bookkeeping (only touched when [obs] is enabled) *)
  mutable hb_nodes : int;
  mutable hb_us : int;
  mutable hb_due_us : int;  (* next time-based heartbeat (us, hub clock) *)
  mutable t_start_us : int;  (* search start (us, hub clock), for ETA *)
  (* profiling (pay-for-use: both [None] by default, and every hook is a
     single [match] away from the unprofiled path) *)
  est : Obs.Estimator.t option;
  prof : Obs.Profile.t option;
  mutable prof_cls : int;  (* move class of the child about to be admitted *)
  mutable prof_rmr : int;  (* its RMR charge, computed in the pre-state *)
  mutable prof_jbase : int;  (* Journal.records at the previous record *)
}

let make_ctx ?seen ?pool ?on_fingerprint ?(max_crashes = 0) ?(max_aborts = 0)
    ?stop ?deadline ?(obs = Obs.Telemetry.null) ?(paranoid = false) ?est
    ?profile ~dedup ~por ~codec ~on_spin ~max_nodes ~max_violations () =
  let seen =
    match seen with Some s -> s | None -> Seen_tbl (Seenmap.create ())
  in
  let sleepable = por && codec.Footprint.encodable in
  let decoded =
    if sleepable then
      Array.init codec.Footprint.total_bits (Footprint.decode codec)
    else [||]
  in
  { seen; dedup; por; codec;
    sleepable; decoded; fp_a = Footprint.make_scratch ();
    fp_b = Footprint.make_scratch (); paranoid; on_fingerprint;
    on_spin; pool; max_violations; max_crashes; max_aborts; stop; deadline;
    obs; quota = max_nodes; pid_counts = [||]; delegate = None;
    nodes = 0; max_depth = 0; nviol = 0; violations = []; stopped = None;
    c_dedup = 0; c_resleeps = 0; c_sleep_prunes = 0; c_chains = 0;
    c_fused = 0; c_crashes = 0; c_aborts = 0; c_jpeak = 0; c_jrecords = 0;
    c_steals = 0; hb_nodes = 0; hb_us = 0; hb_due_us = 0;
    t_start_us = Obs.Telemetry.now_us obs; est; prof = profile;
    prof_cls = cls_root; prof_rmr = 0; prof_jbase = 0 }

let seen_len ctx =
  match ctx.seen with
  | Seen_tbl tbl -> Seenmap.length tbl
  | Seen_shared st -> Fpstore.entries st

let stats_of_ctx ctx =
  let store_evictions, store_drops, omission_prob =
    match ctx.seen with
    | Seen_tbl _ -> (0, 0, 0.0)
    | Seen_shared st ->
        (Fpstore.evictions st, Fpstore.drops st, Fpstore.omission_prob st)
  in
  { zero_stats with
    dedup_hits = ctx.c_dedup; resleeps = ctx.c_resleeps;
    sleep_prunes = ctx.c_sleep_prunes; ample_chains = ctx.c_chains;
    ample_fused = ctx.c_fused; seen_entries = seen_len ctx;
    crashes_applied = ctx.c_crashes; aborts_applied = ctx.c_aborts;
    domain_nodes = [ ctx.nodes ];
    journal_peak = ctx.c_jpeak; undo_records = ctx.c_jrecords;
    steals = ctx.c_steals; store_evictions; store_drops; omission_prob;
    est_nodes =
      (match ctx.est with Some e -> Obs.Estimator.estimate e | None -> 0.);
    est_progress =
      (match ctx.est with Some e -> Obs.Estimator.progress e | None -> 0.) }

(* Charge the node budget for one expansion: burn local quota, then
   claim another chunk from the shared pool. Chunked claims (256 nodes)
   keep the pool CAS off the hot path while bounding how far the global
   budget can be overshot (k domains × one chunk each). *)
let budget_chunk = 256

let charge ctx =
  if ctx.quota > 0 then begin
    ctx.quota <- ctx.quota - 1;
    true
  end
  else
    match ctx.pool with
    | None -> false
    | Some pool ->
        let rec claim () =
          let avail = Atomic.get pool in
          if avail <= 0 then false
          else
            let take = if avail < budget_chunk then avail else budget_chunk in
            if Atomic.compare_and_set pool avail (avail - take) then begin
              ctx.quota <- take - 1;
              true
            end
            else claim ()
        in
        claim ()

(* Heartbeat: push counter snapshots, the instantaneous nodes/sec, the
   current DFS depth and — when the estimator is running — progress %,
   ETA and the live total estimate to the sinks. Cadence is time-based
   (~1 Hz): the deadline/stop poll still runs every 1024 expansions, and
   a heartbeat is emitted from it only once [hb_due_us] has passed — so
   a fast search pays one [now_us] read per 1024 nodes and one sink
   write per second, while a slow search (< 1024 nodes/s) simply beats
   on every poll. All of this is behind [Telemetry.enabled] — with no
   sink attached the explorer never reaches here. *)
let heartbeat ctx depth now =
  let obs = ctx.obs in
  let t = Obs.Telemetry.counter obs in
  let setc name v = Obs.Telemetry.set (t name) v in
  setc "explore.nodes" ctx.nodes;
  setc "explore.dedup_hits" ctx.c_dedup;
  setc "explore.sleep_prunes" ctx.c_sleep_prunes;
  setc "explore.ample_fused" ctx.c_fused;
  setc "explore.seen_entries" (seen_len ctx);
  setc "explore.crashes_applied" ctx.c_crashes;
  setc "explore.aborts_applied" ctx.c_aborts;
  setc "explore.violations" ctx.nviol;
  Obs.Telemetry.flush_counters obs;
  Obs.Telemetry.gauge obs "explore.frontier_depth" (float_of_int depth);
  let dn = ctx.nodes - ctx.hb_nodes and dt = now - ctx.hb_us in
  if dt > 0 && ctx.hb_us > 0 then
    Obs.Telemetry.gauge obs "explore.nodes_per_sec"
      (1e6 *. float_of_int dn /. float_of_int dt);
  ctx.hb_nodes <- ctx.nodes;
  ctx.hb_us <- now;
  (match ctx.est with
  | Some e ->
      let pr = Obs.Estimator.progress e in
      Obs.Telemetry.gauge obs "explore.progress" pr;
      if pr > 1e-9 then begin
        Obs.Telemetry.gauge obs "explore.est_total"
          (float_of_int ctx.nodes /. pr);
        let elapsed = now - ctx.t_start_us in
        if elapsed > 0 then
          Obs.Telemetry.gauge obs "explore.eta_s"
            (1e-6 *. float_of_int elapsed *. (1. -. pr) /. pr)
      end
  | None -> ());
  Obs.Telemetry.instant ctx.obs "explore.heartbeat"

(* The ~1 Hz gate around [heartbeat], shared by both engines' poll
   blocks. Re-arms one second after the beat actually fired, so the
   cadence adapts to stalls instead of bursting to catch up. *)
let heartbeat_due ctx depth =
  let now = Obs.Telemetry.now_us ctx.obs in
  if now >= ctx.hb_due_us then begin
    heartbeat ctx depth now;
    ctx.hb_due_us <- now + 1_000_000
  end

let record_violation ctx schedule kind =
  ctx.nviol <- ctx.nviol + 1;
  ctx.violations <- { schedule = List.rev schedule; kind } :: ctx.violations;
  if ctx.nviol >= ctx.max_violations then begin
    ctx.stopped <- Some `Violations;
    raise Done
  end

(* Estimator weaving (see Obs.Estimator): each expanded node [enter]s
   with its declared child-slot count, each slot is either consumed by
   the child's own expansion or retired as a [leaf] (asleep, pruned,
   delegated, asleep-abandoned chase, or raised), and [leave] closes the
   node. The slot count must equal the number of terminal events under
   the node — full expansions declare every enabled move (the loop
   retires the sleepers), ample chains declare a single slot for the
   whole chain. All no-ops when the estimator is off. *)
let[@inline] est_enter ctx k =
  match ctx.est with
  | Some e -> Obs.Estimator.enter e ~children:k
  | None -> ()

let[@inline] est_leaf ctx =
  match ctx.est with Some e -> Obs.Estimator.leaf e | None -> ()

let[@inline] est_leave ctx =
  match ctx.est with Some e -> Obs.Estimator.leave e | None -> ()

(* Child slots a full expansion will offer: one per enabled move. A
   sleeping move's slot is retired with [est_leaf] by the expansion loop
   when it skips the move — cheaper than pre-counting the awake moves,
   which would re-encode every move's footprint just to subtract the
   sleepers (the loop encodes them again anyway), and identical in
   expectation: a retired slot's probe/mass share stays with the parent
   either way. *)

(* Profile hook: charge the just-admitted node to its cell. Runs at
   admission (after the seen store said yes, before delegation), which
   gives exactly-once semantics per counted node across both engines,
   delegation and the BFS seed. The move class and RMR charge were
   stashed in the ctx by the expansion loop (they must be read in the
   pre-state); section and location are read from the post-state of the
   process that moved. Undo records are attributed as the delta of the
   machine's monotone [Journal.records] counter (0 on the clone
   engine). *)
let prof_record ctx prof m schedule depth =
  let cls, pid =
    match schedule with
    | mv :: _ -> (ctx.prof_cls, Footprint.move_pid mv)
    | [] -> (cls_root, 0)
  in
  let pr = Machine.proc m pid in
  let section = Machine.section_code pr.Machine.sec in
  let pc = pr.Machine.pc in
  let loc, is_pc =
    if pc >= 0 then (pc, true) else (Machine.loc_key m pid, false)
  in
  let jr = Machine.Journal.records m in
  let undo = jr - ctx.prof_jbase in
  let undo = if undo < 0 then 0 else undo in
  ctx.prof_jbase <- jr;
  Obs.Profile.record prof ~depth ~cls ~section ~loc ~is_pc ~rmr:ctx.prof_rmr
    ~undo

(* Stash class + RMR charge for the child [mv] is about to produce;
   [move_rmr] reads footprints, so this is gated on the sampling gate:
   only a child whose admission record will fire pays for the pre-state
   reads. (A stash wasted on a child the seen store then prunes leaves
   the gate untouched — the next candidate re-stashes.) *)
let[@inline] prof_stash ctx m mv =
  match ctx.prof with
  | Some p ->
      if Obs.Profile.next_armed p then begin
        ctx.prof_cls <- move_class mv;
        ctx.prof_rmr <- move_rmr m mv
      end
  | None -> ()

(* Singleton ample set: a [Step p] with a purely-local footprint (no
   shared access, no CS check) is independent of every move of every
   other process, now and after any interleaving — enabledness is
   process-local and nobody else touches [p]'s local state. To be a
   persistent set on its own it must additionally commute with [p]'s own
   commit moves (the only other moves [p] can perform without executing
   the step), which holds per pending event:

   - [P_enter] / [P_exit]: touch section / passage bookkeeping only;
     commits touch buffer + memory. Always commute.
   - [P_issue_write (v, _)] with [v] not already buffered: the push
     appends while commits pop other entries — both orders reach the
     same buffer and memory. (With [v] buffered the push REPLACES the
     pending entry in place, so issue/commit order changes the committed
     value: dependent, not eligible.)
   - [P_begin_fence] / [P_rmw_fence]: under PSO genuinely independent of
     the (still enabled) out-of-order commits. Under TSO entering the
     fence disables the explicit [Commit] move, which formally makes
     them dependent — but in-fence [Step]s perform exactly the commits
     the disabled move would have, in the same (FIFO) order, so every
     schedule committing before the fence maps to an explored one
     committing inside it, with identical memory trajectory and
     CS-enabledness at every point. Eligible by that simulation.
   - [P_end_fence]: only pending once the buffer is drained, so there
     are no commit moves to commute with.
   - everything else (notably a buffer-forwarded read, whose footprint
     class would change once the forwarding entry commits): eligible
     only when the step is [p]'s sole enabled move.

   Validation is post hoc on the cloned successor: the step must not
   make its owner CS-enabled (other processes' CS executions read that
   predicate). A candidate that becomes CS-enabled or raises is skipped;
   exceptions are left for the full expansion to diagnose. *)
let singleton_eligible m p ~sole =
  match Machine.pending_class m p with
  | Machine.K_enter | Machine.K_exit | Machine.K_begin_fence
  | Machine.K_rmw_fence | Machine.K_end_fence ->
      true
  | Machine.K_issue_write ->
      not (Wbuf.mem (Machine.proc m p).Machine.buf (Machine.pending_var m p))
  | _ -> sole

(* Per-pid enabled-move tally into a ctx-owned scratch array. *)
let rec tally_pids counts = function
  | [] -> ()
  | mv :: rest ->
      let p = Footprint.move_pid mv in
      counts.(p) <- counts.(p) + 1;
      tally_pids counts rest

let pid_counts ctx m moves =
  let n = Machine.n_procs m in
  if Array.length ctx.pid_counts < n then ctx.pid_counts <- Array.make n 0
  else Array.fill ctx.pid_counts 0 n 0;
  tally_pids ctx.pid_counts moves;
  ctx.pid_counts

let singleton_ample ctx m moves =
  (* Singleton ample sets (and their chase fusion) are switched off while
     crash budget remains: a crash of the stepping process is dependent on
     its own local step (it is enabled alongside it and wipes the state
     the step would advance), so a lone local step is not an ample set —
     fusing it would skip the crash-before-step interleavings. Once the
     budget is spent no crash move is ever enabled again and the original
     argument applies unchanged. The abort budget suspends them for the
     same reason: a local step may enter or leave an abortable window,
     which enables or disables the process's own abort move. *)
  if
    (not ctx.por)
    || Machine.crashes_total m < ctx.max_crashes
    || Machine.aborts_total m < ctx.max_aborts
  then None
  else begin
    let count = pid_counts ctx m moves in
    let rec pick = function
      | [] -> None
      | (Step p as mv) :: rest
        when singleton_eligible m p ~sole:(count.(p) = 1) ->
          Footprint.of_move_into ctx.fp_a m mv;
          if Footprint.purely_local ctx.fp_a then begin
            let m' = Machine.clone m in
            match apply m' mv with
            | () when Machine.pending_class m' p <> Machine.K_cs ->
                Some (mv, m')
            | () -> pick rest
            | exception (Machine.Exclusion_violation _ | Prog.Spin_exhausted _)
              ->
                pick rest
          end
          else pick rest
      | _ :: rest -> pick rest
    in
    pick moves
  end

(* Child sleep set after executing [mv] from state [m]: keep the sleeping
   moves independent of [mv]; dependent ones wake up (are explored again
   in the subtree). Footprints of sleeping moves are computed in the
   current state, which is exact: a sleeping move's owner has not moved
   since it fell asleep (same-process moves are dependent and would have
   woken it), and other processes' moves do not change its footprint. *)
(* Bit index of an isolated bit [x = 1 lsl k]. *)
let log2_bit x =
  let rec go k x = if x <= 1 then k else go (k + 1) (x lsr 1) in
  go 0 x

(* [fmv] is conventionally [ctx.fp_a] (the executed move's footprint);
   sleeping moves are refilled one at a time into [ctx.fp_b], so the two
   scratches never alias. The decoded-move table spares a [decode]
   allocation per sleeping bit. *)
let rec sleep_keep ctx m fmv rest keep =
  if rest = 0 then keep
  else begin
    let bit = rest land -rest in
    Footprint.of_move_into ctx.fp_b m ctx.decoded.(log2_bit bit);
    let keep =
      if Footprint.independent ctx.fp_b fmv then keep lor bit else keep
    in
    sleep_keep ctx m fmv (rest land (rest - 1)) keep
  end

let filter_sleep_fp ctx m fmv z =
  if z = 0 then 0 else sleep_keep ctx m fmv z 0

let filter_sleep ctx m mv z =
  if z = 0 then 0
  else begin
    Footprint.of_move_into ctx.fp_a m mv;
    filter_sleep_fp ctx m ctx.fp_a z
  end

(* Admit a successor state through the seen store, dedup'ing with the
   mask-aware rule. A fingerprint stored with mask [z'] was explored
   covering every execution not starting in [z']; arriving again with
   sleep [z]:
   - z' ⊆ z: nothing new to do, prune ([None]);
   - otherwise re-explore only the moves slept before but wanted now
     (sleep z ∪ ¬z') and record the new coverage (store z ∩ z').

   The shared store expresses the same rule as claims on the "remaining
   moves" word: this visit's cover is ¬z (∩ full), the fetch-and hands
   back exactly the not-yet-owed intersection [fresh], and the child
   re-explores under sleep ¬fresh — for a fresh state (remaining was
   all-ones) that is z itself, and coverage merging is the commutative
   intersection the sequential rule computes in order. *)
let admit_pruned = min_int
(* [seen_admit] returns the child sleep mask, or [admit_pruned] when the
   revisit is covered — an int sentinel rather than an option so the
   per-edge admission allocates nothing (masks are always >= 0). *)

let seen_admit ctx fp z =
  if not ctx.dedup then z
  else
    match ctx.seen with
    | Seen_tbl tbl ->
        let i = Seenmap.lookup tbl fp in
        if Seenmap.key tbl i < 0 then begin
          Seenmap.insert tbl i fp z;
          z
        end
        else begin
          let z' = Seenmap.value tbl i in
          if z' land lnot z = 0 then begin
            ctx.c_dedup <- ctx.c_dedup + 1;
            admit_pruned
          end
          else begin
            ctx.c_resleeps <- ctx.c_resleeps + 1;
            Seenmap.set_value tbl i (z' land z);
            let full = Footprint.full_mask ctx.codec in
            (z lor lnot z') land full
          end
        end
    | Seen_shared st ->
        if not (Fpstore.masks st) then (
          (* Bitstate keeps one seen-bit per state, no mask: the FIRST
             visit decides coverage forever, so it must cover the full
             move set — admit with an empty sleep mask, sacrificing the
             sleep-set reduction at this subtree root. A revisit then
             prunes soundly up to hash aliasing, which is exactly what
             omission_prob accounts for; admitting under a nonempty
             sleep would instead lose slept interleavings with no
             accounting at all. *)
          match Fpstore.visit st ~fp ~cover:(-1) with
          | Fpstore.New -> 0
          | Fpstore.Covered | Fpstore.Partial _ ->
              ctx.c_dedup <- ctx.c_dedup + 1;
              admit_pruned)
        else (
          (* max_int, not -1: the store masks covers to their 63-bit
             magnitude, so an already-positive all-moves cover keeps the
             [fresh = cover] comparisons below exact *)
          let cover =
            if ctx.sleepable then lnot z land Footprint.full_mask ctx.codec
            else max_int
          in
          match Fpstore.visit st ~fp ~cover with
          | Fpstore.New -> z
          | Fpstore.Covered ->
              ctx.c_dedup <- ctx.c_dedup + 1;
              admit_pruned
          | Fpstore.Partial fresh ->
              if fresh <> cover then ctx.c_resleeps <- ctx.c_resleeps + 1;
              if ctx.sleepable then lnot fresh land Footprint.full_mask ctx.codec
              else 0)

(* Hand a just-admitted subtree to the worker's deque when a delegate is
   installed (parallel mode) and willing; [~must_clone] marks machines
   that are stepped in place (journal engine) and so cannot be parked
   as-is. *)
let try_delegate ctx ~must_clone m schedule depth z =
  match ctx.delegate with
  | None -> false
  | Some f -> f ~must_clone m schedule depth z

let visit_child ctx m' schedule depth z ~child =
  (match ctx.on_fingerprint with
  | Some f -> f (fingerprint m')
  | None -> ());
  let admitted =
    if ctx.dedup then seen_admit ctx (fingerprint m') z else z
  in
  if admitted <> admit_pruned then begin
    let z = admitted in
    (match ctx.prof with
    | Some p -> if Obs.Profile.armed p then prof_record ctx p m' schedule depth
    | None -> ());
    if not (try_delegate ctx ~must_clone:false m' schedule depth z) then
      child m' schedule depth z
    else est_leaf ctx (* parked: the subtree is someone else's estimate *)
  end
  else est_leaf ctx

(* Expand one state: count it, then either diagnose a dead end or visit
   the selected moves through [child]. The deadlock scan is only run when
   there are no moves — it is O(n) and pointless otherwise. *)
let expand ctx m schedule depth sleep ~child =
  if not (charge ctx) then begin
    ctx.stopped <- Some `Nodes;
    raise Done
  end;
  (* the deadline is polled — and a telemetry heartbeat considered —
     every 1024 nodes: a gettimeofday (or sink write) per node would
     dominate the ~2µs/node hot path *)
  if ctx.nodes land 1023 = 0 then begin
    (match ctx.stop with
    | Some s when Atomic.get s ->
        ctx.stopped <- Some `Aborts;
        raise Done
    | _ -> ());
    (match ctx.deadline with
    | Some t when Unix.gettimeofday () > t ->
        ctx.stopped <- Some `Millis;
        raise Done
    | _ -> ());
    if Obs.Telemetry.enabled ctx.obs then heartbeat_due ctx depth
  end;
  ctx.nodes <- ctx.nodes + 1;
  if depth > ctx.max_depth then ctx.max_depth <- depth;
  let moves =
    enabled_moves ~max_crashes:ctx.max_crashes ~max_aborts:ctx.max_aborts m
  in
  if moves = [] then begin
    est_enter ctx 0;
    let n = Machine.n_procs m in
    let unfinished = ref false in
    for p = 0 to n - 1 do
      if Machine.pending_class m p <> Machine.K_done then unfinished := true
    done;
    est_leave ctx;
    if !unfinished then record_violation ctx schedule `Deadlock
  end
  else begin
    (match singleton_ample ctx m moves with
    | Some (mv0, m'0) ->
        (* Persistent singleton: explore it alone (unless asleep, in
           which case everything from here is covered elsewhere).
           Successive singletons are fused into one transition: each
           intermediate state has exactly one explored move, so it is
           passed through without being counted, fingerprinted or stored
           — only the chain's endpoint becomes a search node. Chains are
           finite (every local move strictly advances a continuation, and
           spin reads are not chase-eligible); the fuel is a defensive
           backstop only. For the estimator the whole chain is ONE child
           slot: its terminal event is either the endpoint's admission
           or the asleep abandonment. *)
        let rec chase m mv m' schedule depth z fuel =
          let bit =
            if ctx.sleepable then 1 lsl Footprint.encode ctx.codec mv else 0
          in
          if z land bit <> 0 then begin
            ctx.c_sleep_prunes <- ctx.c_sleep_prunes + 1;
            (* asleep: covered elsewhere *)
            est_leaf ctx
          end
          else begin
            (match mv with
            | Crash _ -> ctx.c_crashes <- ctx.c_crashes + 1
            | Abort _ -> ctx.c_aborts <- ctx.c_aborts + 1
            | _ -> ());
            let z = if ctx.sleepable then filter_sleep ctx m mv z else 0 in
            let schedule = mv :: schedule and depth = depth + 1 in
            if fuel = 0 then visit_child ctx m' schedule depth z ~child
            else
              match
                singleton_ample ctx m'
                  (enabled_moves ~max_crashes:ctx.max_crashes
                     ~max_aborts:ctx.max_aborts m')
              with
              | Some (mv', m'') ->
                  ctx.c_fused <- ctx.c_fused + 1;
                  chase m' mv' m'' schedule depth z (fuel - 1)
              | None -> visit_child ctx m' schedule depth z ~child
          end
        in
        ctx.c_chains <- ctx.c_chains + 1;
        est_enter ctx 1;
        (* chase moves are purely-local Steps by construction *)
        ctx.prof_cls <- cls_step;
        ctx.prof_rmr <- 0;
        chase m mv0 m'0 schedule depth sleep 4096
    | None ->
        (* full expansion with sleep sets: skip sleeping moves; each
           explored move falls asleep for its later siblings' subtrees *)
        est_enter ctx (List.length moves);
        let explored = ref 0 in
        List.iter
          (fun mv ->
            let bit =
              if ctx.sleepable then 1 lsl Footprint.encode ctx.codec mv
              else 0
            in
            if sleep land bit <> 0 then begin
              ctx.c_sleep_prunes <- ctx.c_sleep_prunes + 1;
              est_leaf ctx
            end
            else begin
              let m' = Machine.clone m in
              prof_stash ctx m mv;
              (match apply m' mv with
              | () ->
                  (match mv with
                  | Crash _ -> ctx.c_crashes <- ctx.c_crashes + 1
                  | Abort _ -> ctx.c_aborts <- ctx.c_aborts + 1
                  | _ -> ());
                  let z =
                    if ctx.sleepable then
                      filter_sleep ctx m mv (sleep lor !explored)
                    else 0
                  in
                  visit_child ctx m' (mv :: schedule) (depth + 1) z ~child
              | exception Machine.Exclusion_violation { holder; intruder } ->
                  est_leaf ctx;
                  record_violation ctx (mv :: schedule)
                    (`Exclusion (holder, intruder))
              | exception Prog.Spin_exhausted _ -> (
                  est_leaf ctx;
                  match ctx.on_spin with
                  | `Prune -> ()
                  | `Violation ->
                      record_violation ctx (mv :: schedule) `Spin_exhausted));
              explored := !explored lor bit
            end)
          moves);
    est_leave ctx
  end

let rec dfs ctx m schedule depth sleep =
  expand ctx m schedule depth sleep ~child:(dfs ctx)

(* --- in-place (journal) engine ---------------------------------------- *)

(* The journal engine mirrors [expand]/[dfs] decision-for-decision — same
   move order, same ample/chase selection, same sleep filtering and
   mask-aware dedup — but expands children by apply → recurse → undo on a
   single journaling machine instead of cloning per child, and reads the
   incrementally-maintained fingerprint instead of rehashing the state.
   [Machine.clone] survives only for BFS frontier handoff (the parallel
   seed), post-hoc ample validation in the clone engine, and replay.
   Verdicts, node counts and fingerprint sets are asserted equal across
   the engines by suite_journal's differential tests.

   Invariant: every path through these functions leaves the machine's
   journal exactly where the caller's mark put it, except when [Done]
   aborts the whole search (the machine is then discarded). *)

(* Node fingerprint: O(1) from the journal fold; [~paranoid_fp] verifies
   it against a full rehash and fails loudly on drift. *)
let node_fp ctx m =
  let fp = Machine.fingerprint_fast m in
  if ctx.paranoid then begin
    let full = Machine.fingerprint m in
    if fp <> full then
      failwith
        (Printf.sprintf
           "Explore: incremental fingerprint drift (fast %#x, full %#x)" fp
           full)
  end;
  fp

(* Journal counterpart of [singleton_ample]: validates the candidate by
   applying it on the machine itself, undoing on failure. On success the
   machine is LEFT in the successor state (the caller owns the rollback)
   and the returned mask is the child sleep set — filtered against the
   pre-state, which is why it must be computed here, before the apply. *)
let rec ample_pick_journal ctx m z count = function
  | [] -> None
  | (Step p as mv) :: rest when singleton_eligible m p ~sole:(count.(p) = 1)
    -> (
      Footprint.of_move_into ctx.fp_a m mv;
      if Footprint.purely_local ctx.fp_a then begin
        let z_next =
          if ctx.sleepable then filter_sleep_fp ctx m ctx.fp_a z else 0
        in
        let mark = Machine.Journal.mark m in
        match apply m mv with
        | () when Machine.pending_class m p <> Machine.K_cs ->
            Some (mv, z_next)
        | () ->
            Machine.Journal.undo_to m mark;
            ample_pick_journal ctx m z count rest
        | exception (Machine.Exclusion_violation _ | Prog.Spin_exhausted _) ->
            Machine.Journal.undo_to m mark;
            ample_pick_journal ctx m z count rest
      end
      else ample_pick_journal ctx m z count rest)
  | _ :: rest -> ample_pick_journal ctx m z count rest

let singleton_ample_journal ctx m z moves =
  if
    (not ctx.por)
    || Machine.crashes_total m < ctx.max_crashes
    || Machine.aborts_total m < ctx.max_aborts
  then None
  else ample_pick_journal ctx m z (pid_counts ctx m moves) moves

let rec dfs_journal ctx m schedule depth sleep =
  if not (charge ctx) then begin
    ctx.stopped <- Some `Nodes;
    raise Done
  end;
  if ctx.nodes land 1023 = 0 then begin
    (match ctx.stop with
    | Some s when Atomic.get s ->
        ctx.stopped <- Some `Aborts;
        raise Done
    | _ -> ());
    (match ctx.deadline with
    | Some t when Unix.gettimeofday () > t ->
        ctx.stopped <- Some `Millis;
        raise Done
    | _ -> ());
    if Obs.Telemetry.enabled ctx.obs then heartbeat_due ctx depth
  end;
  ctx.nodes <- ctx.nodes + 1;
  if depth > ctx.max_depth then ctx.max_depth <- depth;
  let moves =
    enabled_moves ~max_crashes:ctx.max_crashes ~max_aborts:ctx.max_aborts m
  in
  if moves = [] then begin
    est_enter ctx 0;
    let n = Machine.n_procs m in
    let unfinished = ref false in
    for p = 0 to n - 1 do
      if Machine.pending_class m p <> Machine.K_done then unfinished := true
    done;
    est_leave ctx;
    if !unfinished then record_violation ctx schedule `Deadlock
  end
  else begin
    let mark0 = Machine.Journal.mark m in
    (match singleton_ample_journal ctx m sleep moves with
    | Some (mv0, z0) ->
        (* the machine is in mv0's successor state; the chase walks the
           singleton chain in place and [undo_to mark0] unwinds the whole
           chain in one sweep when it bottoms out (or is asleep). The
           whole chain is ONE estimator child slot. *)
        ctx.c_chains <- ctx.c_chains + 1;
        est_enter ctx 1;
        (* chase moves are purely-local Steps by construction *)
        ctx.prof_cls <- cls_step;
        ctx.prof_rmr <- 0;
        chase_journal ctx m ~chain_mark:mark0 mv0 ~z_in:sleep ~z_out:z0
          schedule depth 4096
    | None ->
        est_enter ctx (List.length moves);
        dfs_journal_moves ctx m schedule depth sleep 0 moves);
    est_leave ctx
  end

(* The per-move expansion loop, a (closure-free) recursion over the
   enabled moves; [explored] accumulates the already-expanded moves'
   codes for the sibling sleep sets. *)
and dfs_journal_moves ctx m schedule depth sleep explored = function
  | [] -> ()
  | mv :: rest ->
      let bit =
        if ctx.sleepable then 1 lsl Footprint.encode ctx.codec mv else 0
      in
      if sleep land bit <> 0 then begin
        ctx.c_sleep_prunes <- ctx.c_sleep_prunes + 1;
        est_leaf ctx;
        dfs_journal_moves ctx m schedule depth sleep explored rest
      end
      else begin
        (* sleeping-move footprints must be read in the pre-state, so the
           child mask is computed before applying [mv] *)
        let z =
          if ctx.sleepable then filter_sleep ctx m mv (sleep lor explored)
          else 0
        in
        let mark = Machine.Journal.mark m in
        prof_stash ctx m mv;
        (match apply m mv with
        | () ->
            (match mv with
            | Crash _ -> ctx.c_crashes <- ctx.c_crashes + 1
            | Abort _ -> ctx.c_aborts <- ctx.c_aborts + 1
            | _ -> ());
            visit_child_journal ctx m (mv :: schedule) (depth + 1) z;
            Machine.Journal.undo_to m mark
        | exception Machine.Exclusion_violation { holder; intruder } ->
            Machine.Journal.undo_to m mark;
            est_leaf ctx;
            record_violation ctx (mv :: schedule)
              (`Exclusion (holder, intruder))
        | exception Prog.Spin_exhausted _ -> (
            Machine.Journal.undo_to m mark;
            est_leaf ctx;
            match ctx.on_spin with
            | `Prune -> ()
            | `Violation ->
                record_violation ctx (mv :: schedule) `Spin_exhausted));
        dfs_journal_moves ctx m schedule depth sleep (explored lor bit) rest
      end

(* [m] is in the successor state of [mv]; [z_in] is the sleep mask the
   move was selected under (the asleep check), [z_out] the filtered child
   mask. Mirrors [chase] inside [expand]. *)
and chase_journal ctx m ~chain_mark mv ~z_in ~z_out schedule depth fuel =
  let bit =
    if ctx.sleepable then 1 lsl Footprint.encode ctx.codec mv else 0
  in
  if z_in land bit <> 0 then begin
    ctx.c_sleep_prunes <- ctx.c_sleep_prunes + 1;
    (* asleep: covered elsewhere — abandon the whole chain *)
    est_leaf ctx;
    Machine.Journal.undo_to m chain_mark
  end
  else begin
    (match mv with
    | Crash _ -> ctx.c_crashes <- ctx.c_crashes + 1
    | Abort _ -> ctx.c_aborts <- ctx.c_aborts + 1
    | _ -> ());
    let schedule = mv :: schedule and depth = depth + 1 in
    if fuel = 0 then begin
      visit_child_journal ctx m schedule depth z_out;
      Machine.Journal.undo_to m chain_mark
    end
    else
      match
        singleton_ample_journal ctx m z_out
          (enabled_moves ~max_crashes:ctx.max_crashes
             ~max_aborts:ctx.max_aborts m)
      with
      | Some (mv', z') ->
          ctx.c_fused <- ctx.c_fused + 1;
          chase_journal ctx m ~chain_mark mv' ~z_in:z_out ~z_out:z' schedule
            depth (fuel - 1)
      | None ->
          visit_child_journal ctx m schedule depth z_out;
          Machine.Journal.undo_to m chain_mark
  end

(* Same dedup rule as [visit_child], with the fingerprint read from the
   journal fold (computed once, shared by the hook and the store). A
   delegated subtree clones the machine — the clone sheds the active
   journal (see {!Machine.clone}), and the popping worker re-enables it
   through [run_start]. *)
and visit_child_journal ctx m schedule depth z =
  let fp = node_fp ctx m in
  (match ctx.on_fingerprint with Some f -> f fp | None -> ());
  let admitted = seen_admit ctx fp z in
  if admitted <> admit_pruned then begin
    let z = admitted in
    (match ctx.prof with
    | Some p -> if Obs.Profile.armed p then prof_record ctx p m schedule depth
    | None -> ());
    if not (try_delegate ctx ~must_clone:true m schedule depth z) then
      dfs_journal ctx m schedule depth z
    else est_leaf ctx
  end
  else est_leaf ctx

(* Run one start state to completion under the configured engine,
   folding the machine's journal gauges into the ctx even when [Done]
   aborts mid-subtree. *)
(* Root machine for a search. Search machines run lean
   ({!Machine.set_lean}): no search consumer reads the RMR / awareness /
   cache / contention accounting (violations are re-executed by [replay]
   on a fresh, fully-accounting machine), and freezing it roughly halves
   the per-step journal volume. Verdicts, node counts and fingerprints
   are unchanged — see the soundness note on [Machine.set_lean]. *)
let search_machine cfg =
  let m = Machine.create cfg in
  if not cfg.Config.record_trace then Machine.set_lean m true;
  m

let run_start ctx ~engine m schedule depth sleep =
  match (engine : Config.engine) with
  | `Clone -> dfs ctx m schedule depth sleep
  | `Journal | `Compiled ->
      Machine.Journal.enable m;
      (* [enable] zeroes the machine's record counter; re-base the
         profiler's per-node undo attribution on the fresh counter *)
      ctx.prof_jbase <- Machine.Journal.records m;
      Fun.protect
        ~finally:(fun () ->
          ctx.c_jpeak <- max ctx.c_jpeak (Machine.Journal.peak m);
          ctx.c_jrecords <- ctx.c_jrecords + Machine.Journal.records m)
        (fun () -> dfs_journal ctx m schedule depth sleep)

(* --- parallel driver -------------------------------------------------- *)

(* Expand breadth-first from the root until at least [target] pending
   states exist (or the space is exhausted / a violation cap fires).
   Returns the pending frontier — states with their sleep masks — in
   deterministic (BFS) order. *)
let bfs_frontier ctx m0 ~target =
  let pending = Queue.create () in
  Queue.add (m0, [], 0, 0) pending;
  while Queue.length pending > 0 && Queue.length pending < target do
    let m, schedule, depth, sleep = Queue.pop pending in
    expand ctx m schedule depth sleep ~child:(fun m' sched d z ->
        Queue.add (m', sched, d, z) pending)
  done;
  List.of_seq (Queue.to_seq pending)

let result_of_ctx ctx ~exhausted =
  {
    nodes = ctx.nodes;
    exhausted;
    verified = exhausted && ctx.violations = [];
    violations = List.rev ctx.violations;
    max_depth = ctx.max_depth;
    partial = (if exhausted then None else ctx.stopped);
    stats = stats_of_ctx ctx;
  }

(* A parked subtree: an independent machine plus the search coordinates
   to resume it. [w_idx] is the frontier index of the BFS start the
   subtree descends from — violations inherit it so the merge stays
   deterministic no matter which domain ends up exploring the subtree.
   Every parked item has already been admitted by the shared store (its
   state is claimed), so the popping worker resumes with [run_start]
   directly. *)
type work_item = {
  w_idx : int;
  w_m : Machine.t;
  w_sched : move list;
  w_depth : int;
  w_sleep : int;
}

type worker_out = {
  o_nodes : int;
  o_depth : int;
  o_exhausted : bool;
  o_stopped : partial_reason option;
  o_tagged : ((int * move list) * violation) list;
      (* key: (frontier index, root-first schedule) — a total order
         independent of which domain found the violation or when *)
  o_stats : stats;
  o_t0 : float;
  o_t1 : float;
}

(* How eagerly a worker parks subtrees for thieves: only when its own
   deque has run low, and at most one park per [delegate_period] nodes so
   the clone cost (journal engine: O(state) per park) stays far off the
   per-node budget while stealable work is replenished every ~64 nodes. *)
let deque_low_water = 4

let delegate_period_mask = 63

(* Per-domain worker: pop own deque LIFO (depth-first locality), steal
   FIFO from others when empty. Termination: items are only ever pushed
   to the pusher's OWN deque, so a worker draining its own deque before
   exiting guarantees every parked item is processed by someone; the
   [busy] count (workers currently holding work) lets idle thieves
   distinguish "momentarily empty" from "globally done". *)
let shared_worker ~engine ~paranoid ~store ~pool ~deques ~busy ~d ~dedup ~por
    ~codec ~on_spin ~max_violations ~max_crashes ~max_aborts ~stop ~deadline
    ~est_cfg ~profile_shard () =
  (* each domain owns an independent estimator (distinct seed — the
     probes must not be correlated across domains) and an independent
     profile shard; the coordinator merges both after the join *)
  let est =
    Option.map
      (fun (c : Obs.Estimator.cfg) ->
        Obs.Estimator.create ~cfg:{ c with Obs.Estimator.seed = c.Obs.Estimator.seed + d + 1 } ())
      est_cfg
  in
  let ctx =
    make_ctx ~seen:(Seen_shared store) ~pool ~max_crashes ~max_aborts ?stop
      ?deadline ~paranoid ~dedup ~por ~codec ~on_spin ~max_nodes:0
      ~max_violations ?est ?profile:profile_shard ()
  in
  let own = deques.(d) in
  let k = Array.length deques in
  let cur_idx = ref 0 in
  ctx.delegate <-
    Some
      (fun ~must_clone m sched depth z ->
        if
          Deque.size own >= deque_low_water
          || ctx.nodes land delegate_period_mask <> 0
        then false
        else begin
          let m = if must_clone then Machine.clone m else m in
          Deque.push own
            { w_idx = !cur_idx; w_m = m; w_sched = sched; w_depth = depth;
              w_sleep = z };
          true
        end);
  let tagged = ref [] in
  let drain idx =
    List.iter
      (fun v -> tagged := ((idx, v.schedule), v) :: !tagged)
      (List.rev ctx.violations);
    ctx.violations <- []
  in
  let run_item it =
    cur_idx := it.w_idx;
    match run_start ctx ~engine it.w_m it.w_sched it.w_depth it.w_sleep with
    | () -> drain it.w_idx
    | exception Done ->
        drain it.w_idx;
        raise Done
  in
  let steal_sweep () =
    let rec go i =
      if i >= k then None
      else
        match Deque.steal deques.((d + i) mod k) with
        | Some it ->
            ctx.c_steals <- ctx.c_steals + 1;
            Some it
        | None -> go (i + 1)
    in
    go 1
  in
  (* The worker holds a [busy] token whenever it owns work. Releasing it
     before hunting (and re-acquiring on a successful steal) makes
     [busy = 0 ∧ all deques empty] a sound termination signal: nobody
     busy means nobody can push again. A worker that exits the hunt on a
     momentarily-true signal while a thief is mid-steal is still sound —
     parked work always drains through its owner's deque. *)
  let acquire () =
    match Deque.pop own with
    | Some it -> Some it
    | None ->
        Atomic.decr busy;
        let rec hunt () =
          match steal_sweep () with
          | Some it ->
              Atomic.incr busy;
              Some it
          | None ->
              if Atomic.get busy = 0 then None
              else begin
                Domain.cpu_relax ();
                hunt ()
              end
        in
        hunt ()
  in
  (match profile_shard with
  | Some p -> Obs.Profile.start p
  | None -> ());
  let t0 = Unix.gettimeofday () in
  let exhausted =
    try
      let rec go () =
        match acquire () with
        | None -> ()
        | Some it ->
            run_item it;
            go ()
      in
      go ();
      true
    with Done ->
      Atomic.decr busy;
      false
  in
  let t1 = Unix.gettimeofday () in
  (match profile_shard with
  | Some p -> Obs.Profile.stop p
  | None -> ());
  { o_nodes = ctx.nodes; o_depth = ctx.max_depth; o_exhausted = exhausted;
    o_stopped = ctx.stopped; o_tagged = List.rev !tagged;
    o_stats = stats_of_ctx ctx; o_t0 = t0; o_t1 = t1 }

let explore_parallel ~domains ~max_nodes ~max_violations ~dedup ~por ~codec
    ~on_spin ~max_crashes ~max_aborts ~stop ~deadline ~obs ~paranoid
    ~estimator ~profile cfg =
  (* the BFS seed expands on the coordinator with the clone engine under
     BOTH engines: frontier states must be independent machines that can
     be handed to other domains; workers then re-enable journaling on
     their own copies (run_start). The seed shares the store with the
     workers, so frontier states are already claimed when parked.
     The coordinator profiles into the caller's accumulator directly (it
     runs alone until the spawn) but carries no estimator: queue-order
     BFS breaks the enter/leaf/leave stack discipline, so the parallel
     estimate is [exact BFS nodes + Σ per-subtree worker estimates]. *)
  let store =
    Fpstore.create ~mode:cfg.Config.store ~expected:max_nodes
  in
  let ctx =
    make_ctx ~seen:(Seen_shared store) ~max_crashes ~max_aborts ?stop
      ?deadline ~obs ~paranoid ~dedup ~por ~codec ~on_spin ~max_nodes
      ~max_violations ?profile ()
  in
  let bfs_t0 = Obs.Telemetry.now_us obs in
  let finish_seed_only r =
    if Option.is_none estimator then r
    else
      { r with
        stats =
          { r.stats with
            est_nodes = float_of_int r.nodes;
            est_progress = (if r.exhausted then 1.0 else 0.0) } }
  in
  match bfs_frontier ctx (search_machine cfg) ~target:(domains * 8) with
  | [] ->
      (* space smaller than frontier: the seed enumerated it exactly *)
      finish_seed_only (result_of_ctx ctx ~exhausted:true)
  | exception Done -> finish_seed_only (result_of_ctx ctx ~exhausted:false)
  | frontier ->
      if Obs.Telemetry.enabled obs then
        Obs.Telemetry.span_at obs ~ts0:bfs_t0
          ~ts1:(Obs.Telemetry.now_us obs)
          ~args:[ ("frontier", Obs.Json.Int (List.length frontier)) ]
          "explore.bfs_seed";
      let k = min domains (List.length frontier) in
      let deques = Array.init k (fun _ -> Deque.create ()) in
      List.iteri
        (fun i (m, sched, depth, sleep) ->
          Deque.push deques.(i mod k)
            { w_idx = i; w_m = m; w_sched = sched; w_depth = depth;
              w_sleep = sleep })
        frontier;
      (* the budget not consumed by the BFS seed becomes a shared pool
         the workers claim from in chunks — work stealing makes any
         static split meaningless *)
      let pool = Atomic.make (max 0 ctx.quota) in
      let busy = Atomic.make k in
      let wall0 = Unix.gettimeofday () in
      let engine = cfg.Config.engine in
      (* one profile shard per domain, created here and absorbed below in
         array order — the merged accumulator is deterministic however the
         work was stolen *)
      let shards =
        Array.init k (fun _ ->
            Option.map
              (fun p -> new_profile ~every:(Obs.Profile.every p) ())
              profile)
      in
      let spawned =
        Array.init k (fun d ->
            Domain.spawn
              (shared_worker ~engine ~paranoid ~store ~pool ~deques ~busy ~d
                 ~dedup ~por ~codec ~on_spin ~max_violations ~max_crashes
                 ~max_aborts ~stop ~deadline ~est_cfg:estimator
                 ~profile_shard:shards.(d)))
      in
      let parts = Array.map Domain.join spawned in
      (match profile with
      | Some p ->
          Array.iter
            (function
              | Some shard -> Obs.Profile.absorb ~into:p shard
              | None -> ())
            shards
      | None -> ());
      let nodes =
        Array.fold_left (fun a p -> a + p.o_nodes) ctx.nodes parts
      in
      let max_depth =
        Array.fold_left (fun a p -> max a p.o_depth) ctx.max_depth parts
      in
      let exhausted = Array.for_all (fun p -> p.o_exhausted) parts in
      let partial =
        if exhausted then None
        else
          Array.fold_left
            (fun acc p ->
              match acc with Some _ -> acc | None -> p.o_stopped)
            None parts
      in
      (* Deterministic merge: sort by (frontier index, schedule) — a key
         intrinsic to the violation, not to the domain or instant that
         found it — then drop duplicates (a store race may hand the same
         subtree to two domains; dedup keeps the reported set stable). *)
      let tagged =
        Array.to_list parts
        |> List.concat_map (fun p -> p.o_tagged)
        |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
      in
      let merged = List.rev ctx.violations @ List.map snd tagged in
      let violations = List.filteri (fun i _ -> i < max_violations) merged in
      (* Merged search stats: coordinator (BFS seed) tallies plus every
         domain's. A domain that finishes early idles until the slowest
         one joins — that idle window, summed over domains, is the merge
         stall. Store-level tallies (occupancy, evictions, drops,
         omission) are global: read once from the shared store, not
         summed. *)
      let last_finish =
        Array.fold_left (fun a p -> max a p.o_t1) wall0 parts
      in
      let stats =
        Array.fold_left
          (fun acc p ->
            let s = p.o_stats in
            { acc with
              dedup_hits = acc.dedup_hits + s.dedup_hits;
              resleeps = acc.resleeps + s.resleeps;
              sleep_prunes = acc.sleep_prunes + s.sleep_prunes;
              ample_chains = acc.ample_chains + s.ample_chains;
              ample_fused = acc.ample_fused + s.ample_fused;
              crashes_applied = acc.crashes_applied + s.crashes_applied;
              aborts_applied = acc.aborts_applied + s.aborts_applied;
              domain_nodes = acc.domain_nodes @ s.domain_nodes;
              merge_stall_us =
                acc.merge_stall_us
                + int_of_float (1e6 *. (last_finish -. p.o_t1));
              journal_peak = max acc.journal_peak s.journal_peak;
              undo_records = acc.undo_records + s.undo_records;
              steals = acc.steals + s.steals;
              est_nodes = acc.est_nodes +. s.est_nodes;
              est_progress = acc.est_progress +. s.est_progress })
          { (stats_of_ctx ctx) with domains_used = k; domain_nodes = [] }
          parts
      in
      let stats =
        { stats with
          seen_entries = Fpstore.entries store;
          store_evictions = Fpstore.evictions store;
          store_drops = Fpstore.drops store;
          omission_prob = Fpstore.omission_prob store }
      in
      (* parallel estimate: the BFS seed is exact (ctx.nodes), each worker
         estimated the subtrees it actually ran; progress is the
         unweighted mean over domains *)
      let stats =
        if Option.is_none estimator then stats
        else
          { stats with
            est_nodes = float_of_int ctx.nodes +. stats.est_nodes;
            est_progress =
              (if k > 0 then stats.est_progress /. float_of_int k else 0.0)
          }
      in
      (* Workers never touch the sinks (they are not thread-safe); the
         coordinator replays their wall-clock windows as spans after the
         join, one timeline lane (tid) per domain. *)
      if Obs.Telemetry.enabled obs then begin
        let base = Obs.Telemetry.now_us obs in
        Array.iteri
          (fun d p ->
            let rel t = base - int_of_float (1e6 *. (last_finish -. t)) in
            Obs.Telemetry.span_at obs ~tid:(d + 1) ~ts0:(rel p.o_t0)
              ~ts1:(rel p.o_t1)
              ~args:
                [ ("nodes", Obs.Json.Int p.o_nodes);
                  ("dedup_hits", Obs.Json.Int p.o_stats.dedup_hits);
                  ("sleep_prunes", Obs.Json.Int p.o_stats.sleep_prunes);
                  ("steals", Obs.Json.Int p.o_stats.steals) ]
              (Printf.sprintf "explore.domain%d" d))
          parts;
        Obs.Telemetry.gauge obs "explore.merge_stall_us"
          (float_of_int stats.merge_stall_us)
      end;
      {
        nodes;
        exhausted;
        verified = exhausted && violations = [];
        violations;
        max_depth;
        partial;
        stats;
      }

(* --- public entry points ---------------------------------------------- *)

(* [dedup] prunes states with identical fingerprints. The fingerprint
   covers shared memory, every buffer, section / passage counts,
   cache-relevant pending state and a structural hash of each continuation
   (which includes spin fuel counters), all folded into one 63-bit FNV-1a
   value — pruning is exact up to hash collisions, so verification results
   are "no violation in the full deduplicated space", a high-confidence
   check rather than a proof.

   [on_spin] decides what spin-fuel exhaustion means: [`Prune] (default)
   abandons the branch — sound for exclusion checking because spin
   re-reads do not change shared state, so longer spins revisit the same
   choice points — while [`Violation] reports it (livelock hunting). *)
(* [spin_fuel] temporarily lowers [Prog.default_spin_fuel] so algorithm
   busy-waits stay shallow during exploration. *)
let explore ?(max_nodes = 500_000) ?(max_violations = 1) ?(dedup = true)
    ?(on_spin = `Prune) ?(spin_fuel = 6) ?(record_trace = false)
    ?(domains = 1) ?(por = true) ?(max_crashes = 0) ?(max_aborts = 0) ?stop
    ?max_millis ?on_fingerprint ?(obs = Obs.Telemetry.null)
    ?(paranoid_fp = false) ?estimator ?profile (cfg : Config.t) : result =
  if domains < 1 then invalid_arg "Explore.explore: domains must be >= 1";
  if domains > 1 && Option.is_some on_fingerprint then
    invalid_arg "Explore.explore: on_fingerprint requires domains = 1";
  (match profile with
  | Some p ->
      if
        Obs.Profile.classes p <> profile_classes
        || Obs.Profile.sections p <> profile_sections
      then
        invalid_arg
          "Explore.explore: profile accumulator has a foreign schema — \
           create it with Explore.new_profile"
  | None -> ());
  if max_crashes < 0 then
    invalid_arg "Explore.explore: max_crashes must be >= 0";
  if max_aborts < 0 then
    invalid_arg "Explore.explore: max_aborts must be >= 0";
  if max_aborts > 0 && Option.is_none cfg.Config.abort_section then
    invalid_arg
      "Explore.explore: max_aborts > 0 requires an abort_section in the \
       configuration";
  let codec =
    Footprint.codec_of_config ~crashes:(max_crashes > 0)
      ~aborts:(max_aborts > 0) cfg
  in
  let deadline =
    Option.map
      (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
      max_millis
  in
  let cfg = { cfg with Config.record_trace } in
  let saved_fuel = !Prog.default_spin_fuel in
  Prog.default_spin_fuel := spin_fuel;
  Fun.protect ~finally:(fun () -> Prog.default_spin_fuel := saved_fuel)
  @@ fun () ->
  (* The root node never passes through a [visit_child]; attribute it
     here so [total_nodes] matches [nodes] exactly on exhausted runs.
     The accumulator's clock starts now and keeps running through the
     whole search (partial runs flush whatever accrued). *)
  (match profile with
  | Some p ->
      Obs.Profile.start p;
      if Obs.Profile.armed p then
        Obs.Profile.record p ~depth:0 ~cls:cls_root ~section:0 ~loc:0
          ~is_pc:false ~rmr:0 ~undo:0
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match profile with Some p -> Obs.Profile.stop p | None -> ())
  @@ fun () ->
  let finish (r : result) =
    if Obs.Telemetry.enabled obs then begin
      let t = Obs.Telemetry.counter obs in
      Obs.Telemetry.set (t "explore.nodes") r.nodes;
      Obs.Telemetry.set (t "explore.dedup_hits") r.stats.dedup_hits;
      Obs.Telemetry.set (t "explore.sleep_prunes") r.stats.sleep_prunes;
      Obs.Telemetry.set (t "explore.ample_fused") r.stats.ample_fused;
      Obs.Telemetry.set (t "explore.seen_entries") r.stats.seen_entries;
      Obs.Telemetry.set (t "explore.crashes_applied") r.stats.crashes_applied;
      Obs.Telemetry.set (t "explore.aborts_applied") r.stats.aborts_applied;
      Obs.Telemetry.set (t "explore.violations") (List.length r.violations);
      Obs.Telemetry.set (t "explore.steals") r.stats.steals;
      Obs.Telemetry.set (t "explore.store_evictions") r.stats.store_evictions;
      Obs.Telemetry.set (t "explore.store_drops") r.stats.store_drops;
      Obs.Telemetry.flush_counters obs;
      if r.stats.omission_prob > 0.0 then
        Obs.Telemetry.gauge obs "explore.omission_prob" r.stats.omission_prob;
      if Option.is_some estimator then begin
        Obs.Telemetry.gauge obs "explore.progress" r.stats.est_progress;
        Obs.Telemetry.gauge obs "explore.est_total" r.stats.est_nodes;
        Obs.Telemetry.gauge obs "explore.eta_s" 0.0
      end;
      (* final repaint trigger for the progress sink — also reached on
         partial (stopped / interrupted) verdicts *)
      Obs.Telemetry.instant obs "explore.heartbeat"
    end;
    r
  in
  if domains > 1 then
    finish
      (explore_parallel ~domains ~max_nodes ~max_violations ~dedup ~por
         ~codec ~on_spin ~max_crashes ~max_aborts ~stop ~deadline ~obs
         ~paranoid:paranoid_fp ~estimator ~profile cfg)
  else begin
    (* one domain: the hash table serves the exact mode (no
       synchronization to pay for); the memory-bounded modes go through
       the shared store even sequentially, so their semantics do not
       depend on the domain count *)
    let seen =
      match cfg.Config.store with
      | Config.Store_exact -> Seen_tbl (Seenmap.create ())
      | mode -> Seen_shared (Fpstore.create ~mode ~expected:max_nodes)
    in
    let est =
      Option.map (fun c -> Obs.Estimator.create ~cfg:c ()) estimator
    in
    let ctx =
      make_ctx ~seen ?on_fingerprint ~max_crashes ~max_aborts ?stop ?deadline
        ~obs ~paranoid:paranoid_fp ~dedup ~por ~codec ~on_spin ~max_nodes
        ~max_violations ?est ?profile ()
    in
    let t0 = Obs.Telemetry.now_us obs in
    let exhausted =
      try
        run_start ctx ~engine:cfg.Config.engine (search_machine cfg) [] 0 0;
        true
      with Done -> false
    in
    if Obs.Telemetry.enabled obs then
      Obs.Telemetry.span_at obs ~ts0:t0 ~ts1:(Obs.Telemetry.now_us obs)
        ~args:[ ("nodes", Obs.Json.Int ctx.nodes) ]
        "explore.dfs";
    finish (result_of_ctx ctx ~exhausted)
  end

(* --- replay ------------------------------------------------------------ *)

type replay_outcome =
  | R_completed
  | R_exclusion of Pid.t * Pid.t
  | R_spin of Var.t
  | R_bad_pid of int * Pid.t  (* 0-based move index, out-of-range pid *)
  | R_bad_abort of int * Pid.t
      (* abort delivered outside a declared wait point (or the
         configuration has no abort section): 0-based move index, pid *)
  | R_stuck of int * string  (* 0-based move index, reason *)

let replay (cfg : Config.t) (schedule : move list) =
  let m = Machine.create cfg in
  (* Replays reuse the journal engine when configured: the same apply
     path (with journaling and incremental fingerprints live) drives
     trace-producing replays, so the Chrome-trace fixtures double as a
     byte-level check that journaling is invisible to execution. *)
  (match cfg.Config.engine with
  | `Journal | `Compiled -> Machine.Journal.enable m
  | `Clone -> ());
  (* Validate pids up front: a schedule referencing a process the machine
     does not have is a malformed input (wrong lock, wrong -n, truncated
     file), not a property of this configuration — report it as such
     rather than letting the move raise a generic out-of-bounds error. *)
  let rec scan_pids i = function
    | [] -> None
    | mv :: rest ->
        let p = Footprint.move_pid mv in
        if p < 0 || p >= cfg.Config.n then Some (R_bad_pid (i, p))
        else scan_pids (i + 1) rest
  in
  let bad_pid = scan_pids 0 schedule in
  match bad_pid with
  | Some outcome -> (m, outcome)
  | None ->
      let rec go i = function
        | [] -> R_completed
        | (Abort p) :: _ when not (Machine.abort_deliverable m p) ->
            (* typed, pre-apply: an ill-timed abort is a malformed
               schedule (wrong point, wrong lock), not a machine error *)
            R_bad_abort (i, p)
        | mv :: rest -> (
            match apply m mv with
            | () -> go (i + 1) rest
            | exception Machine.Exclusion_violation { holder; intruder } ->
                R_exclusion (holder, intruder)
            | exception Prog.Spin_exhausted v -> R_spin v
            | exception Machine.Process_finished p ->
                R_stuck
                  (i, Printf.sprintf "%s already finished" (Pid.to_string p))
            | exception Invalid_argument msg -> R_stuck (i, msg))
      in
      let outcome = go 0 schedule in
      (m, outcome)

(* Replay a violating schedule on a fresh machine, for display. Uses the
   caller's configuration unchanged (trace recording on by default), so
   the replayed machine's trace is renderable. *)
let replay_schedule (cfg : Config.t) (schedule : move list) =
  fst (replay cfg schedule)
