(** The lower-bound adversary (Section 4 of the paper), executable against
    real lock implementations.

    Each induction step from H_i to H_{i+1} is realized as a round loop:
    every active process is advanced to its next special event
    (Definition 3) and classified; the majority class determines which of
    the paper's cases fires (read round, fence rounds, write-low/high
    rounds — plus an RMW round for comparison-primitive contention, which
    the paper's tradeoff covers). Erasure is performed by deterministic
    replay; any divergence aborts the run with {!Stuck}, making the
    IN-set reasoning of Lemmas 4-8 dynamically checked. *)

open Tsim.Ids

exception Stuck of string

type t

val create :
  ?model:Tsim.Config.mem_model ->
  ?advance_fuel:int ->
  ?audit:bool ->
  ?no_independent_sets:bool ->
  ?no_regularization:bool ->
  ?obs:Obs.Telemetry.t ->
  Locks.Lock_intf.t ->
  n:int ->
  t
(** Build H_0 (every process executes Enter only). [audit] runs IN-set
    checks at every step boundary. The two [no_*] flags are the E10
    ablations: they disable the Turán selection and the regularization
    phase respectively, and make the run detectably unsound.

    [obs] attaches a telemetry hub: the construction emits nested spans
    ([adversary.run] > [adversary.round] / [adversary.regularize]), one
    instant per round (kind, Act sizes, processes erased) and per closed
    induction step, gauges for Turán independent-set sizes, and counters
    for rounds / erasures / fences forced so far. Default: disabled. *)

val machine : t -> Tsim.Machine.t
val active : t -> Pidset.t
(** Act(H_i): surviving, mutually invisible processes. *)

val finished : t -> Pidset.t

val one_round : t -> unit
(** Execute a single construction round (exposed for tests/debugging). *)

val run : ?max_steps:int -> ?max_rounds:int -> ?min_act:int -> t -> Report.t
(** Run induction steps until at most [min_act] active processes remain
    (default 0), a limit is hit, or the construction gets stuck. Pass
    [~min_act:1] to keep a surviving process for {!Witness.extract}. *)

val audit_failures : t -> string list
(** IN-set violations recorded by the per-step audit (empty unless an
    ablation flag was set — asserted by the test suite). *)
