(* The lower-bound adversary (Section 4 of the paper), executable.

   The paper builds executions H_0, H_1, ... inductively; each step runs a
   read phase (Lemma 6), a write phase (Lemma 7) and a regularization phase
   (Lemma 8), erasing processes so that the surviving active processes stay
   mutually invisible (an IN-set) while every survivor completes one more
   fence per step and exactly one process finishes its passage.

   This module drives a *real algorithm implementation* through the same
   structure. Because implementations mix operation kinds more freely than
   the proof's canonical form (and may use comparison primitives, which the
   paper's tradeoff covers), the three phases are realized as a unified
   round loop: each round classifies every active process by the special
   event it is about to execute and applies the corresponding case:

   - read round          = read phase case II (Turán independent set over
                           the conflict graph, interleaved critical reads)
   - fence-begin round   = read phase case I
   - write-low round     = write phase case II (distinct variables)
   - write-high round    = write phase case III (one hot variable,
                           commits in increasing ID order)
   - fence-end round     = write phase case I, followed by the
                           regularization phase for p_max
   - rmw round           = comparison-primitive contention: the designated
                           winner executes first (becoming visible), the
                           losers' CAS attempts fail and each costs them a
                           fence — then the winner is regularized, so the
                           losers end up aware only of a *finished*
                           process, preserving invisibility.

   Erasure is performed by deterministic replay (lib/trace); any replay
   divergence means an invisibility invariant was broken and aborts the
   run with [Stuck]. *)

open Tsim
open Tsim.Ids
open Execution

exception Stuck of string

let stuckf fmt = Printf.ksprintf (fun s -> raise (Stuck s)) fmt

type cls =
  | C_read of Var.t
  | C_fence_begin
  | C_fence_end
  | C_commit of Var.t
  | C_rmw of Var.t * [ `Cas | `Faa | `Swap ]
  | C_cs

type t = {
  cfg : Config.t;
  target : string;
  n : int;
  mutable m : Machine.t;
  mutable act : Pidset.t;
  mutable fin : Pidset.t;
  mutable rounds_cur : Report.round list;  (* current step, reversed *)
  mutable steps : Report.step list;  (* reversed *)
  mutable step_idx : int;
  advance_fuel : int;
  audit : bool;  (* run IN-set checks at each step boundary *)
  no_independent_sets : bool;
      (* ablation: keep every reader/writer instead of a Turán independent
         set — invisibility breaks, which the audit and erasure replay
         detect (experiment E10) *)
  no_regularization : bool;
      (* ablation: do NOT finish the visible max-ID process after
         write-high/RMW rounds. The paper's Lemma 8 exists precisely
         because the other survivors are aware of p_max; leaving it active
         breaks IN1 and makes subsequent erasures diverge (experiment E10) *)
  mutable audit_failures : string list;
  obs : Obs.Telemetry.t;
}

let create ?(model = Config.Cc_wb) ?(advance_fuel = 200_000) ?(audit = false)
    ?(no_independent_sets = false) ?(no_regularization = false)
    ?(obs = Obs.Telemetry.null) (lock : Locks.Lock_intf.t) ~n =
  let cfg =
    Locks.Harness.config_of_lock ~model ~max_passages:1 ~check_exclusion:true
      lock ~n
  in
  let m = Machine.create cfg in
  (* H_0: every process executes Enter only *)
  for p = 0 to n - 1 do
    (match Machine.pending m p with
    | Machine.P_enter -> ignore (Machine.step m p)
    | _ -> assert false)
  done;
  {
    cfg;
    target = lock.Locks.Lock_intf.name;
    n;
    m;
    act = List.fold_left (fun s p -> Pidset.add p s) Pidset.empty (List.init n Fun.id);
    fin = Pidset.empty;
    rounds_cur = [];
    steps = [];
    step_idx = 0;
    advance_fuel;
    audit;
    no_independent_sets;
    no_regularization;
    audit_failures = [];
    obs;
  }

let machine t = t.m
let active t = t.act
let finished t = t.fin

(* --- erasure --------------------------------------------------------- *)

let erase t (y : Pidset.t) =
  if not (Pidset.is_empty y) then begin
    let tr = Trace.of_machine t.m in
    let r = Erasure.erase t.cfg tr y in
    if r.Erasure.mismatches <> [] then
      stuckf "erasure replay mismatch (%s): %s"
        (String.concat "," (List.map Pid.to_string (Pidset.elements y)))
        (match r.Erasure.mismatches with
        | m :: _ -> m.Erasure.reason
        | [] -> "");
    if r.Erasure.value_divergences > 0 then
      stuckf "erasure caused %d value divergences: erased set was visible"
        r.Erasure.value_divergences;
    t.m <- r.Erasure.machine;
    t.act <- Pidset.diff t.act y
  end

(* --- advancing a process to its next decision point ------------------- *)

(* Run [p] through non-special events; auto-complete implicit (RMW-drain)
   EndFence events, which are fences the process is charged for but which
   lead directly to the RMW decision point. *)
let advance t p : cls =
  let rec go fuel =
    if fuel <= 0 then
      stuckf "advance: p%d exceeded fuel at %s (livelock or broken invariant)"
        p
        (Machine.pending_to_string (Machine.pending t.m p))
    else
      match Machine.pending t.m p with
      | Machine.P_done -> stuckf "advance: active p%d is finished" p
      | Machine.P_enter -> stuckf "advance: active p%d back in NCS" p
      | Machine.P_recover ->
          stuckf "advance: active p%d crashed (construction is failure-free)"
            p
      | Machine.P_abort_done ->
          stuckf "advance: active p%d aborted (construction is failure-free)"
            p
      | Machine.P_exit ->
          stuckf "advance: p%d in exit section outside regularization" p
      | pending when not (Machine.pending_is_special t.m p) ->
          ignore pending;
          ignore (Machine.step t.m p);
          go (fuel - 1)
      | Machine.P_end_fence
        when (Machine.proc t.m p).Machine.fence_implicit ->
          ignore (Machine.step t.m p);
          go (fuel - 1)
      | Machine.P_read v -> C_read v
      | Machine.P_begin_fence | Machine.P_rmw_fence -> C_fence_begin
      | Machine.P_end_fence -> C_fence_end
      | Machine.P_commit v -> C_commit v
      | Machine.P_cas (v, _, _) -> C_rmw (v, `Cas)
      | Machine.P_faa (v, _) -> C_rmw (v, `Faa)
      | Machine.P_swap (v, _) -> C_rmw (v, `Swap)
      | Machine.P_cs -> C_cs
      | Machine.P_issue_write _ | Machine.P_marker _ ->
          (* never special: the non-special guard above steps through them *)
          assert false
  in
  go t.advance_fuel

let classify_all t : (Pid.t * cls) list =
  List.map (fun p -> (p, advance t p)) (Pidset.elements t.act)

(* --- regularization phase (Lemma 8) ----------------------------------- *)

(* Let [p] run to the end of its passage. Before each of its critical
   events on a variable u, erase the (at most one, Claim 4.3.2) active
   process that is visible on u or owns u, so that no information about
   invisible processes flows to [p]. *)
let regularize t p =
  Obs.Telemetry.span t.obs ~args:[ ("pid", Obs.Json.Int p) ]
    "adversary.regularize"
  @@ fun () ->
  let erased_total = ref Pidset.empty in
  let rec go fuel =
    if fuel <= 0 then stuckf "regularize: p%d exceeded fuel" p
    else
      match Machine.pending t.m p with
      | Machine.P_done -> ()
      | pending ->
          let special = Machine.pending_is_special t.m p in
          let target_var =
            match pending with
            | Machine.P_read v | Machine.P_commit v
            | Machine.P_cas (v, _, _) | Machine.P_faa (v, _)
            | Machine.P_swap (v, _) ->
                if special then Some v else None
            | _ -> None
          in
          (match target_var with
          | Some u ->
              let w = Pidset.remove p t.act in
              let q =
                match Machine.writer_of t.m u with
                | Some q when Pidset.mem q w -> Pidset.singleton q
                | _ -> Pidset.empty
              in
              let q_u =
                match Layout.owner t.cfg.Config.layout u with
                | Some q when Pidset.mem q w -> Pidset.singleton q
                | _ -> Pidset.empty
              in
              let to_erase = Pidset.union q q_u in
              if Pidset.cardinal to_erase > 1 then
                stuckf
                  "regularize: Claim 4.3.2 violated at v%d (|Q| = %d)" u
                  (Pidset.cardinal to_erase);
              erased_total := Pidset.union !erased_total to_erase;
              erase t to_erase
          | None -> ());
          ignore (Machine.step t.m p);
          go (fuel - 1)
  in
  go t.advance_fuel;
  t.act <- Pidset.remove p t.act;
  t.fin <- Pidset.add p t.fin;
  !erased_total

(* --- round bookkeeping ------------------------------------------------ *)

let record_round ?(detail = "") t kind ~act_before ~erased =
  t.rounds_cur <-
    {
      Report.kind;
      act_before;
      act_after = Pidset.cardinal t.act;
      erased;
      trace_len = Vec.length (Machine.trace t.m);
      detail;
    }
    :: t.rounds_cur;
  if Obs.Telemetry.enabled t.obs then begin
    let c = Obs.Telemetry.counter t.obs in
    Obs.Telemetry.incr (c "adversary.rounds");
    Obs.Telemetry.add (c "adversary.erased") (Pidset.cardinal erased);
    Obs.Telemetry.set (c "adversary.act") (Pidset.cardinal t.act);
    Obs.Telemetry.instant t.obs
      ~args:
        [ ("act_before", Obs.Json.Int act_before);
          ("act_after", Obs.Json.Int (Pidset.cardinal t.act));
          ("erased", Obs.Json.Int (Pidset.cardinal erased));
          ("detail", Obs.Json.String detail) ]
      ("adversary." ^ Report.round_kind_name kind)
  end

let stats_over_act t =
  Pidset.fold
    (fun p (fmin, fmax, cmin, cmax) ->
      let f = Machine.fences_completed t.m p in
      let c = Machine.criticals t.m p in
      (min fmin f, max fmax f, min cmin c, max cmax c))
    t.act
    (max_int, 0, max_int, 0)

let close_step t ~finished_process ~regularization_erased =
  let fmin, fmax, cmin, cmax =
    if Pidset.is_empty t.act then (0, 0, 0, 0)
    else stats_over_act t
  in
  (if t.audit then begin
     let tr = Trace.of_machine t.m in
     let v = Analysis.Inset.check ~in3:false tr t.act in
     if not v.Analysis.Inset.ok then
       t.audit_failures <-
         List.map
           (fun viol ->
             Printf.sprintf "H_%d: %s: %s" (t.step_idx + 1)
               viol.Analysis.Inset.property viol.Analysis.Inset.detail)
           v.Analysis.Inset.violations
         @ t.audit_failures;
     (* Lemmas 6-8, conditions (2)/(3): at each step boundary every
        surviving active process has completed the same number of fences
        and executed the same number of critical events. *)
     if Pidset.cardinal t.act > 1 then begin
       if fmin <> fmax then
         t.audit_failures <-
           Printf.sprintf "H_%d: fence counts not uniform [%d..%d]"
             (t.step_idx + 1) fmin fmax
           :: t.audit_failures;
       if cmin <> cmax then
         t.audit_failures <-
           Printf.sprintf "H_%d: critical counts not uniform [%d..%d]"
             (t.step_idx + 1) cmin cmax
           :: t.audit_failures
     end
   end);
  t.steps <-
    {
      Report.index = t.step_idx;
      rounds = List.rev t.rounds_cur;
      finished_process;
      regularization_erased;
      act_size = Pidset.cardinal t.act;
      fin_size = Pidset.cardinal t.fin;
      min_fences = fmin;
      max_fences = fmax;
      min_criticals = cmin;
      max_criticals = cmax;
    }
    :: t.steps;
  t.rounds_cur <- [];
  t.step_idx <- t.step_idx + 1;
  if Obs.Telemetry.enabled t.obs then begin
    let c = Obs.Telemetry.counter t.obs in
    Obs.Telemetry.set (c "adversary.steps") t.step_idx;
    Obs.Telemetry.set (c "adversary.finished") (Pidset.cardinal t.fin);
    (* fences forced so far: every surviving active process has completed
       at least [fmin] fences (the lower-bound currency of Theorem 2) *)
    Obs.Telemetry.set (c "adversary.fences_forced") fmin;
    Obs.Telemetry.flush_counters t.obs;
    Obs.Telemetry.instant t.obs
      ~args:
        [ ("finished_process",
           match finished_process with
           | Some p -> Obs.Json.Int p
           | None -> Obs.Json.Null);
          ("reg_erased",
           Obs.Json.Int (Pidset.cardinal regularization_erased));
          ("act", Obs.Json.Int (Pidset.cardinal t.act));
          ("min_fences", Obs.Json.Int fmin);
          ("max_fences", Obs.Json.Int fmax) ]
      (Printf.sprintf "adversary.step_H%d" t.step_idx)
  end

(* --- the rounds -------------------------------------------------------- *)

let keep_only t (w : Pidset.t) =
  let victims = Pidset.diff t.act w in
  erase t victims;
  victims

(* Read phase, case II: conflict graph over the processes about to perform
   a critical read; edges connect a reader to the owner of and the process
   visible on its target variable (Section 4.1.1). *)
let read_round t readers =
  let act_before = Pidset.cardinal t.act in
  let detail = ref "" in
  let w =
    if t.no_independent_sets then Pidset.of_list (List.map fst readers)
    else begin
      let g = Graphs.Graph.create (List.map fst readers) in
      List.iter
        (fun (p, v) ->
          (match Layout.owner t.cfg.Config.layout v with
          | Some q -> Graphs.Graph.add_edge g p q
          | None -> ());
          match Machine.writer_of t.m v with
          | Some q -> Graphs.Graph.add_edge g p q
          | None -> ())
        readers;
      let is = Graphs.Turan.independent_set g in
      detail :=
        Printf.sprintf "conflict graph |V|=%d |E|=%d, kept %d (Turan >= %d)"
          (Graphs.Graph.order g) (Graphs.Graph.size g) (List.length is)
          (Graphs.Turan.guaranteed_size ~order:(Graphs.Graph.order g)
             ~avg_degree:(Graphs.Graph.average_degree g));
      if Obs.Telemetry.enabled t.obs then
        Obs.Telemetry.gauge t.obs "adversary.independent_set"
          (float_of_int (List.length is));
      Pidset.of_list is
    end
  in
  let erased = keep_only t w in
  (* interleave the critical reads *)
  Pidset.iter
    (fun p ->
      match Machine.pending t.m p with
      | Machine.P_read _ -> ignore (Machine.step t.m p)
      | other ->
          stuckf "read_round: p%d pending %s after erasure" p
            (Machine.pending_to_string other))
    w;
  record_round ~detail:!detail t Report.Read_round ~act_before ~erased

(* Read phase, case I: everyone about to begin a fence does so. *)
let fence_begin_round t fencers =
  let act_before = Pidset.cardinal t.act in
  let w = Pidset.of_list fencers in
  let erased = keep_only t w in
  Pidset.iter
    (fun p ->
      match Machine.pending t.m p with
      | Machine.P_begin_fence | Machine.P_rmw_fence ->
          ignore (Machine.step t.m p)
      | other ->
          stuckf "fence_begin_round: p%d pending %s" p
            (Machine.pending_to_string other))
    w;
  record_round t Report.Fence_begin_round ~act_before ~erased

(* Write phase, cases II and III (Section 4.2.1). *)
let write_round t writers =
  let act_before = Pidset.cardinal t.act in
  let vars = List.sort_uniq compare (List.map snd writers) in
  let nv = List.length vars and nw = List.length writers in
  if nv * nv >= nw then begin
    (* case II: low contention — one writer per variable, then an
       independent set that avoids owners and prior accessors *)
    let chosen =
      List.map
        (fun v -> (List.find (fun (_, u) -> u = v) writers, v))
        vars
      |> List.map (fun ((p, _), v) -> (p, v))
    in
    let w =
      if t.no_independent_sets then Pidset.of_list (List.map fst chosen)
      else begin
        let g = Graphs.Graph.create (List.map fst chosen) in
        List.iter
          (fun (p, v) ->
            (match Layout.owner t.cfg.Config.layout v with
            | Some q -> Graphs.Graph.add_edge g p q
            | None -> ());
            Pidset.iter
              (fun q -> if q <> p then Graphs.Graph.add_edge g p q)
              (Machine.accessed_set t.m v))
          chosen;
        let is = Graphs.Turan.independent_set g in
        if Obs.Telemetry.enabled t.obs then
          Obs.Telemetry.gauge t.obs "adversary.independent_set"
            (float_of_int (List.length is));
        Pidset.of_list is
      end
    in
    let erased = keep_only t w in
    Pidset.iter
      (fun p ->
        match Machine.pending t.m p with
        | Machine.P_commit _ -> ignore (Machine.step t.m p)
        | other ->
            stuckf "write_round(II): p%d pending %s" p
              (Machine.pending_to_string other))
      w;
    record_round
      ~detail:(Printf.sprintf "%d distinct variables" nv)
      t Report.Write_low_round ~act_before ~erased
  end
  else begin
    (* case III: high contention — keep the largest same-variable group and
       commit in increasing ID order; the max-ID process ends up visible *)
    let group_of v = List.filter (fun (_, u) -> u = v) writers in
    let v, group =
      List.fold_left
        (fun (bv, bg) v ->
          let g = group_of v in
          if List.length g > List.length bg then (v, g) else (bv, bg))
        (-1, []) vars
    in
    let w = Pidset.of_list (List.map fst group) in
    let erased = keep_only t w in
    List.iter
      (fun p ->
        match Machine.pending t.m p with
        | Machine.P_commit _ -> ignore (Machine.step t.m p)
        | other ->
            stuckf "write_round(III): p%d pending %s" p
              (Machine.pending_to_string other))
      (List.sort compare (List.map fst group));
    record_round
      ~detail:
        (Printf.sprintf "%d ID-ordered commits; p%d left visible"
           (List.length group)
           (Pidset.max_elt w))
      t (Report.Write_high_round v) ~act_before ~erased
  end

(* Write phase, case I: complete the fences, then regularize p_max. *)
let fence_end_round t enders =
  let act_before = Pidset.cardinal t.act in
  let w = Pidset.of_list enders in
  let erased = keep_only t w in
  Pidset.iter
    (fun p ->
      match Machine.pending t.m p with
      | Machine.P_end_fence -> ignore (Machine.step t.m p)
      | other ->
          stuckf "fence_end_round: p%d pending %s" p
            (Machine.pending_to_string other))
    w;
  record_round t Report.Fence_end_round ~act_before ~erased;
  (* regularization phase: the max-ID active process finishes its passage *)
  if t.no_regularization then
    close_step t ~finished_process:None ~regularization_erased:Pidset.empty
  else
    match Pidset.max_elt_opt t.act with
    | None -> ()
    | Some p_max ->
        let reg_erased = regularize t p_max in
        close_step t ~finished_process:(Some p_max)
          ~regularization_erased:reg_erased

(* Comparison-primitive contention. For CAS groups the designated winner
   (max ID) executes first and succeeds; the losers execute after it, fail,
   and have paid a fence for the drain. The winner is immediately
   regularized so the losers are aware only of a finished process. For
   FAA/SWAP groups every executor becomes visible, so only the winner is
   kept (e.g. a ticket lock's FAA cannot be made to retry — the adversary
   honestly gains nothing). *)
let rmw_round t rmws =
  let act_before = Pidset.cardinal t.act in
  let vars = List.sort_uniq compare (List.map (fun (_, v, _) -> v) rmws) in
  let group_of v = List.filter (fun (_, u, _) -> u = v) rmws in
  let v, group =
    List.fold_left
      (fun (bv, bg) v ->
        let g = group_of v in
        if List.length g > List.length bg then (v, g) else (bv, bg))
      (-1, []) vars
  in
  let all_cas = List.for_all (fun (_, _, op) -> op = `Cas) group in
  if all_cas then begin
    let pids = List.map (fun (p, _, _) -> p) group in
    let w = Pidset.of_list pids in
    let erased = keep_only t w in
    let p_max = Pidset.max_elt w in
    let order = p_max :: List.filter (fun p -> p <> p_max) (List.sort compare pids) in
    List.iter
      (fun p ->
        match Machine.pending t.m p with
        | Machine.P_cas _ -> ignore (Machine.step t.m p)
        | other ->
            stuckf "rmw_round: p%d pending %s" p
              (Machine.pending_to_string other))
      order;
    record_round
      ~detail:
        (Printf.sprintf "CAS group of %d; winner p%d scheduled first"
           (List.length group) p_max)
      t (Report.Rmw_round v) ~act_before ~erased;
    if t.no_regularization then
      close_step t ~finished_process:None ~regularization_erased:Pidset.empty
    else begin
      let reg_erased = regularize t p_max in
      close_step t ~finished_process:(Some p_max)
        ~regularization_erased:reg_erased
    end
  end
  else begin
    (* keep only the max-ID member of the hot group *)
    let p_max =
      List.fold_left (fun acc (p, _, _) -> max acc p) (-1) group
    in
    let erased = keep_only t (Pidset.singleton p_max) in
    ignore (Machine.step t.m p_max);
    record_round
      ~detail:"FAA/SWAP group: only the designated winner kept"
      t (Report.Rmw_round v) ~act_before ~erased;
    let reg_erased = regularize t p_max in
    close_step t ~finished_process:(Some p_max)
      ~regularization_erased:reg_erased
  end

(* A process reached its CS without a special event in between: the paper
   erases it (at most one such process exists, Lemma 5). *)
let cs_erase_round t cs_ready =
  let act_before = Pidset.cardinal t.act in
  let y = Pidset.of_list cs_ready in
  erase t y;
  record_round t Report.Cs_erase_round ~act_before ~erased:y

(* --- the main loop ----------------------------------------------------- *)

let one_round t =
  Obs.Telemetry.span t.obs "adversary.round" @@ fun () ->
  let classes = classify_all t in
  let cs = List.filter_map (fun (p, c) -> if c = C_cs then Some p else None) classes in
  if cs <> [] then cs_erase_round t cs
  else begin
    let reads =
      List.filter_map
        (fun (p, c) -> match c with C_read v -> Some (p, v) | _ -> None)
        classes
    in
    let bfences =
      List.filter_map
        (fun (p, c) -> if c = C_fence_begin then Some p else None)
        classes
    in
    let efences =
      List.filter_map
        (fun (p, c) -> if c = C_fence_end then Some p else None)
        classes
    in
    let commits =
      List.filter_map
        (fun (p, c) -> match c with C_commit v -> Some (p, v) | _ -> None)
        classes
    in
    let rmws =
      List.filter_map
        (fun (p, c) -> match c with C_rmw (v, op) -> Some (p, v, op) | _ -> None)
        classes
    in
    let sizes =
      [
        (`Reads, List.length reads);
        (`Bfences, List.length bfences);
        (`Commits, List.length commits);
        (`Rmws, List.length rmws);
        (`Efences, List.length efences);
      ]
    in
    let best, _ =
      List.fold_left
        (fun (bk, bs) (k, s) -> if s > bs then (k, s) else (bk, bs))
        (`Reads, -1) sizes
    in
    match best with
    | `Reads -> read_round t reads
    | `Bfences -> fence_begin_round t bfences
    | `Commits -> write_round t commits
    | `Rmws -> rmw_round t rmws
    | `Efences -> fence_end_round t efences
  end

let best_fences_anywhere t =
  let best = ref 0 and best_pid = ref 0 in
  for p = 0 to t.n - 1 do
    let f = Machine.fences_completed t.m p in
    if f > !best then begin
      best := f;
      best_pid := p
    end
  done;
  (!best, !best_pid)

let run ?(max_steps = 10_000) ?(max_rounds = 100_000) ?(min_act = 0) t :
    Report.t =
  Obs.Telemetry.span t.obs
    ~args:[ ("target", Obs.Json.String t.target); ("n", Obs.Json.Int t.n) ]
    "adversary.run"
  @@ fun () ->
  let rounds = ref 0 in
  let outcome =
    try
      while
        Pidset.cardinal t.act > min_act
        && t.step_idx < max_steps && !rounds < max_rounds
      do
        one_round t;
        incr rounds
      done;
      if Pidset.cardinal t.act <= min_act then
        Report.Exhausted_active_processes
      else Report.Reached_step_limit
    with Stuck msg -> Report.Stuck msg
  in
  (* close a dangling partial step for reporting *)
  if t.rounds_cur <> [] then
    close_step t ~finished_process:None ~regularization_erased:Pidset.empty;
  let best_fences, best_fences_pid = best_fences_anywhere t in
  {
    Report.target = t.target;
    n = t.n;
    steps = List.rev t.steps;
    outcome;
    best_fences;
    best_fences_pid;
    total_contention = Trace.total_contention (Trace.of_machine t.m);
  }

let audit_failures t = List.rev t.audit_failures
