(* Algorithm 1 of the paper (Lemma 9): one-time mutual exclusion from an
   N-limited-use counter — and hence from a pre-filled queue (dequeue) or
   stack (pop), since either implements fetch&increment.

   Shared data (each write is followed by a fence, as the paper assumes):

     release[N+1] : boolean, initially [1, 0, ..., 0]
     waiting[N+1] : pid or ⊥, initially ⊥
     spin[N]      : boolean, initially 0      (spin.(p) DSM-local to p)
     C            : the provided object

   entry(p):  v := C.fetch&increment()
              waiting[v] := p; fence
              if release[v] = 0 then await spin[p] ≠ 0

   exit(p):   release[v+1] := 1; fence
              q := waiting[v+1]
              if q ≠ ⊥ then spin[q] := 1; fence

   The passage performs exactly one operation on the object plus O(1)
   reads/writes and O(1) fences, so the mutex inherits the object's RMR
   and fence complexities up to an additive constant — which transfers the
   paper's lower bound from locks to counters, stacks and queues. *)

open Tsim
open Tsim.Ids
open Prog

let bottom = -1

type ctx = {
  release : Var.t array;  (* N+1 *)
  waiting : Var.t array;  (* N+1 *)
  spin : Var.t array;  (* N *)
  my_v : int array;  (* scratch: counter value drawn in entry *)
}

let make ?(name_suffix = "") (builder : Obj_intf.builder) ~n :
    Locks.Lock_intf.t =
  let layout = Layout.create () in
  let provider = builder layout ~n in
  let ctx =
    {
      release =
        Array.init (n + 1) (fun i ->
            Layout.var layout
              ~init:(if i = 0 then 1 else 0)
              (Printf.sprintf "release[%d]" i));
      waiting = Layout.array layout ~init:bottom "waiting" (n + 1);
      spin = Layout.array layout ~owner_fn:(fun i -> Some i) ~init:0 "spin" n;
      my_v = Array.make n 0;
    }
  in
  let entry p =
    let* v = provider.Obj_intf.fetch_inc p in
    ctx.my_v.(p) <- v;
    let* () = write ctx.waiting.(v) p in
    let* () = fence in
    let* r = read ctx.release.(v) in
    if r <> 0 then unit
    else
      let* _ = spin_until ctx.spin.(p) (fun x -> x <> 0) in
      unit
  in
  let exit_section p =
    let v = ctx.my_v.(p) in
    let* () = write ctx.release.(v + 1) 1 in
    let* () = fence in
    let* q = read ctx.waiting.(v + 1) in
    if q = bottom then unit
    else
      let* () = write ctx.spin.(q) 1 in
      fence
  in
  {
    Locks.Lock_intf.name =
      "mutex-from-" ^ provider.Obj_intf.provider_name ^ name_suffix;
    uses_rmw = provider.Obj_intf.uses_rmw;
    pure = false;  (* provider scratch arrays *)
    one_time = true;
    adaptive = false;
    layout;
    entry;
    exit_section;
    recovery = None;
    abort = None;
  }

let from_counter_faa ~n = make Counter.faa_provider ~n
let from_counter_cas ~n = make Counter.cas_provider ~n
let from_queue ~n = make Oqueue.dequeue_provider ~n
let from_stack ~n = make Ostack.pop_provider ~n

let families : Locks.Lock_intf.family list =
  [
    Locks.Lock_intf.make_family "mutex-from-counter-faa" (fun ~n ->
        from_counter_faa ~n);
    Locks.Lock_intf.make_family "mutex-from-counter-cas" (fun ~n ->
        from_counter_cas ~n);
    Locks.Lock_intf.make_family "mutex-from-queue" (fun ~n -> from_queue ~n);
    Locks.Lock_intf.make_family "mutex-from-stack" (fun ~n -> from_stack ~n);
  ]
