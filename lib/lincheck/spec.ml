(* Sequential specifications.

   A spec is a deterministic state machine: [apply state op] returns the
   post-state if the operation's recorded result is legal from [state],
   or [None] if it is not. States must be comparable/hashable for
   memoization, so they are encoded as int lists. *)

type state = int list

type t = {
  spec_name : string;
  initial : state;
  apply : state -> History.op -> state option;
}

(* Counter with fetch&increment: state = [current]. An aborted faa (the
   caller crashed; the return value is unknowable) is legal with any
   observed value, so its effect is just the increment. *)
let counter =
  {
    spec_name = "counter";
    initial = [ 0 ];
    apply =
      (fun st op ->
        match (st, op.History.label, op.History.result) with
        | [ c ], "faa", Some r when r = c -> Some [ c + 1 ]
        | [ c ], "faa", None when op.History.aborted -> Some [ c + 1 ]
        | _ -> None);
  }

(* Stack of ints: state = contents, top first. [empty] encoded as -1. *)
let stack =
  {
    spec_name = "stack";
    initial = [];
    apply =
      (fun st op ->
        match (op.History.label, op.History.arg, op.History.result) with
        | "push", Some v, _ -> Some (v :: st)
        | "pop", _, Some r -> (
            match st with
            | top :: rest when r = top -> Some rest
            | [] when r = -1 -> Some []
            | _ -> None)
        | _ -> None);
  }

(* FIFO queue: state = contents, head first. *)
let queue =
  {
    spec_name = "queue";
    initial = [];
    apply =
      (fun st op ->
        match (op.History.label, op.History.arg, op.History.result) with
        | "enq", Some v, _ -> Some (st @ [ v ])
        | "deq", _, Some r -> (
            match st with
            | h :: rest when r = h -> Some rest
            | [] when r = -1 -> Some []
            | _ -> None)
        | _ -> None);
  }

(* Read/write register: state = [current]. Aborted reads have no effect
   and an unknowable result, so they are legal from any state. *)
let register =
  {
    spec_name = "register";
    initial = [ 0 ];
    apply =
      (fun st op ->
        match (st, op.History.label, op.History.arg, op.History.result) with
        | _, "write", Some v, _ -> Some [ v ]
        | [ c ], "read", _, Some r when r = c -> Some [ c ]
        | [ c ], "read", _, None when op.History.aborted -> Some [ c ]
        | _ -> None);
  }
