(* Concurrent operation histories.

   An operation record carries its invocation and response positions in
   the machine trace; two operations are concurrent iff their
   [inv, res] intervals overlap. Histories are recorded by
   [Workload.run]: the free-monad continuations fire exactly when the
   simulator executes the surrounding events, so the recorded positions
   are the operations' real extent in the execution. *)

open Tsim.Ids

type op = {
  pid : Pid.t;
  label : string;  (* e.g. "faa", "push", "pop" *)
  arg : Value.t option;
  result : Value.t option;
  inv : int;  (* trace position at invocation *)
  res : int;  (* trace position at response *)
  uid : int;  (* dense id within the history *)
  aborted : bool;
      (* the process crashed before responding: [res] is the crash
         position, [result] is unknowable. Under strict linearizability
         the op either took effect before [res] or never did. *)
}

type t = op array

(* [inv] is the trace length just before the op's first event and [res]
   the length just after its last, so strict sequencing is [res <= inv]. *)
let precedes a b = a.res <= b.inv
let concurrent a b = not (precedes a b) && not (precedes b a)

let of_list ops =
  let arr = Array.of_list ops in
  Array.sort (fun a b -> compare (a.inv, a.res) (b.inv, b.res)) arr;
  Array.mapi (fun i o -> { o with uid = i }) arr

let length = Array.length

let pp_op fmt o =
  Format.fprintf fmt "%a.%s%s%s%s [%d,%d]" Pid.pp o.pid o.label
    (match o.arg with Some a -> Printf.sprintf "(%d)" a | None -> "()")
    (match o.result with Some r -> Printf.sprintf "=%d" r | None -> "")
    (if o.aborted then "!crash" else "")
    o.inv o.res

let pp fmt (h : t) =
  Array.iter (fun o -> Format.fprintf fmt "%a@." pp_op o) h
