(** Wing & Gong linearizability checking with dead-configuration
    memoization: find a total order extending real-time precedence that
    is legal under the spec.

    Histories with {!History.op.aborted} operations are checked for
    {e strict} linearizability: a crashed operation either takes effect
    before its crash point (its [res]) or is dropped entirely; both
    branches are explored. Legality of a linearized aborted op is the
    spec's call — it sees [result = None] and should accept any effect
    the operation could have had (see {!Spec.counter}); specs that
    refuse [None] results under-approximate, rejecting histories whose
    crashed op did commit. *)

type verdict = {
  linearizable : bool;
  witness : History.op list;  (** a legal linearization when found *)
  dropped : History.op list;
      (** aborted ops the witness declares never-ran *)
  states_explored : int;
}

val check : Spec.t -> History.t -> verdict
(** @raise Invalid_argument beyond 62 operations. *)
