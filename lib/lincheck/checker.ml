(* Wing & Gong linearizability checking with memoization.

   Search for a linearization: a total order of the operations that (a)
   extends the history's real-time precedence order and (b) is legal
   under the sequential spec. At each step any *minimal* remaining
   operation (one that no other remaining operation strictly precedes)
   may be linearized next; dead (remaining-set, state) pairs are memoized
   so the search is exponential only in the width of the history's
   concurrency, not its length. Histories here come from the simulator's
   schedules (tens of operations), well within range.

   Aborted operations (process crashed before responding) make this a
   strict-linearizability check (Aguilera & Frolund): such an op either
   takes effect before its crash point — its [res] is the crash position,
   so ordinary precedence enforces "commits before the crash" — or it is
   dropped entirely. Both branches are explored. Dropping is restricted
   to minimal ops without loss: a drop has no state effect, so it
   commutes with everything linearized before it. *)

type verdict = {
  linearizable : bool;
  witness : History.op list;  (* a legal linearization when found *)
  dropped : History.op list;  (* aborted ops the witness declares unrun *)
  states_explored : int;
}

let check (spec : Spec.t) (h : History.t) : verdict =
  let n = History.length h in
  if n > 62 then invalid_arg "Checker.check: history too long (max 62 ops)";
  let full_mask = if n = 0 then 0L else Int64.sub (Int64.shift_left 1L n) 1L in
  let bit i = Int64.shift_left 1L i in
  let mem i mask = Int64.logand mask (bit i) <> 0L in
  (* precedence: pred_mask.(i) = ops that must linearize before op i *)
  let pred_mask = Array.make n 0L in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && History.precedes h.(j) h.(i) then
        pred_mask.(i) <- Int64.logor pred_mask.(i) (bit j)
    done
  done;
  let dead : (int64 * Spec.state, unit) Hashtbl.t = Hashtbl.create 1024 in
  let explored = ref 0 in
  let witness = ref [] in
  let dropped = ref [] in
  (* [go remaining state acc drops]: true if the remaining set
     linearizes from [state]. *)
  let rec go remaining state acc drops =
    incr explored;
    if remaining = 0L then begin
      witness := List.rev acc;
      dropped := List.rev drops;
      true
    end
    else if Hashtbl.mem dead (remaining, state) then false
    else begin
      let ok = ref false in
      let i = ref 0 in
      while (not !ok) && !i < n do
        let idx = !i in
        incr i;
        if mem idx remaining
           && Int64.logand pred_mask.(idx) remaining = 0L then begin
          (match spec.Spec.apply state h.(idx) with
          | Some state' ->
              if
                go
                  (Int64.logxor remaining (bit idx))
                  state' (h.(idx) :: acc) drops
              then ok := true
          | None -> ());
          if (not !ok) && h.(idx).History.aborted then
            (* crashed before taking effect: the op never ran *)
            if
              go
                (Int64.logxor remaining (bit idx))
                state acc (h.(idx) :: drops)
            then ok := true
        end
      done;
      if not !ok then Hashtbl.replace dead (remaining, state) ();
      !ok
    end
  in
  let linearizable = go full_mask spec.Spec.initial [] [] in
  {
    linearizable;
    witness = !witness;
    dropped = !dropped;
    states_explored = !explored;
  }
