(** Recording object histories from the simulator: each of [n] processes
    runs [ops_per_proc] operations inside its entry section; monad
    continuations capture true invocation/response trace positions. *)

open Tsim
open Tsim.Ids

type op_spec = { label : string; arg : Value.t option; prog : Value.t Prog.t }

val op : ?arg:Value.t -> string -> Value.t Prog.t -> op_spec

type schedule = Rr | Rand of int

val run :
  ?model:Config.mem_model ->
  ?schedule:schedule ->
  ?crash_prob:float ->
  ?max_crashes:int ->
  ?abort_prob:float ->
  ?max_aborts:int ->
  ?crash_semantics:Config.crash_semantics ->
  layout:Layout.t ->
  n:int ->
  ops_per_proc:int ->
  (Pid.t -> int -> op_spec) ->
  History.t
(** With [crash_prob > 0] (requires a [Rand] schedule) up to
    [max_crashes] crash faults are injected; an operation interrupted by
    a crash is recorded with {!History.op.aborted} set, [result = None]
    and [res] at the crash position, and the recovered process restarts
    its workload from its first operation. [abort_prob] / [max_aborts]
    inject abort faults the same way at the workload's declared wait
    points ({!Tsim.Prog.abortable}): the interrupted operation becomes a
    minimal aborted record and the process restarts its workload. The
    resulting history is checked for strict linearizability by
    {!Checker.check}.
    @raise Invalid_argument for fault injection with a [Rr] schedule. *)

val run_and_check :
  ?model:Config.mem_model ->
  ?schedule:schedule ->
  ?crash_prob:float ->
  ?max_crashes:int ->
  ?abort_prob:float ->
  ?max_aborts:int ->
  ?crash_semantics:Config.crash_semantics ->
  layout:Layout.t ->
  n:int ->
  ops_per_proc:int ->
  (Pid.t -> int -> op_spec) ->
  Spec.t ->
  History.t * Checker.verdict
