(* Recording object histories from the simulator.

   Each of [n] processes executes a sequence of object operations inside
   its entry section. The free monad's continuations fire exactly when
   the simulator executes the corresponding events, so closures around
   each operation capture its true invocation and response positions in
   the trace. The resulting history feeds the Wing & Gong checker. *)

open Tsim
open Tsim.Ids
open Prog

(* What one process does at step [i]: a label, an optional argument (for
   the spec), and the operation's program. *)
type op_spec = { label : string; arg : Value.t option; prog : Value.t Prog.t }

let op ?arg label prog = { label; arg; prog }

type schedule = Rr | Rand of int

let run ?(model = Config.Cc_wb) ?(schedule = Rr) ?(crash_prob = 0.0)
    ?(max_crashes = 0) ?(abort_prob = 0.0) ?(max_aborts = 0)
    ?(crash_semantics = Config.Drop_buffer) ~layout ~n ~ops_per_proc
    (gen : Pid.t -> int -> op_spec) : History.t =
  if (crash_prob > 0.0 || abort_prob > 0.0) && schedule = Rr then
    invalid_arg "Workload.run: fault injection needs a Rand schedule";
  let mref = ref None in
  let trace_len () =
    match !mref with
    | Some m -> Vec.length (Machine.trace m)
    | None -> 0
  in
  let recorded = ref [] in
  (* Every invocation logs a completion cell; the response closure below
     never fires for an operation interrupted by a crash or an abort (the
     fault wipes the continuation), so cells still false at the end are
     faulted ops. A recovered or aborted process restarts its workload
     from op 0: the new invocations are fresh history records, the
     interrupted one becomes a minimal aborted record closed at the fault
     position. *)
  let invocations = ref [] in
  let entry p =
    let rec ops i =
      if i >= ops_per_proc then unit
      else begin
        (* this closure body runs when the previous operation finished,
           i.e. at the real invocation point *)
        let o = gen p i in
        let inv = trace_len () in
        let completed = ref false in
        invocations := (p, o.label, o.arg, inv, completed) :: !invocations;
        let* r = o.prog in
        completed := true;
        recorded :=
          { History.pid = p; label = o.label; arg = o.arg; result = Some r;
            inv; res = trace_len (); uid = 0; aborted = false }
          :: !recorded;
        ops (i + 1)
      end
    in
    ops 0
  in
  let cfg =
    Config.make ~model ~check_exclusion:false ~crash_semantics
      ?abort_section:
        (* object ops have no lock to clean up after; an abortable wait
           just stops waiting *)
        (if max_aborts > 0 then Some (fun _ -> Prog.unit) else None)
      ~n ~layout ~entry
      ~exit_section:(fun _ -> Prog.unit)
      ()
  in
  let m = Machine.create cfg in
  mref := Some m;
  (match schedule with
  | Rr -> ignore (Sched.round_robin m)
  | Rand seed ->
      ignore
        (Sched.random ~seed ~crash_prob ~max_crashes ~abort_prob ~max_aborts
           m));
  (* close each interrupted invocation at its process's first crash or
     abort event after the invocation point *)
  let tr = Machine.trace m in
  let fault_after p inv =
    let len = Vec.length tr in
    let rec go i =
      if i >= len then None
      else
        let e = Vec.get tr i in
        match e.Event.kind with
        | (Event.Crash _ | Event.Abort) when e.Event.pid = p -> Some (i + 1)
        | _ -> go (i + 1)
    in
    go inv
  in
  let aborted =
    List.filter_map
      (fun (p, label, arg, inv, completed) ->
        if !completed then None
        else
          match fault_after p inv with
          | Some res ->
              Some
                { History.pid = p; label; arg; result = None; inv; res;
                  uid = 0; aborted = true }
          | None -> None (* open op at run end: not recorded, as before *))
      !invocations
  in
  History.of_list (aborted @ !recorded)

(* Convenience: run and check in one go. *)
let run_and_check ?model ?schedule ?crash_prob ?max_crashes ?abort_prob
    ?max_aborts ?crash_semantics ~layout ~n ~ops_per_proc gen spec =
  let h =
    run ?model ?schedule ?crash_prob ?max_crashes ?abort_prob ?max_aborts
      ?crash_semantics ~layout ~n ~ops_per_proc gen
  in
  (h, Checker.check spec h)
