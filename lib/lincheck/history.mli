(** Concurrent operation histories recorded from simulator traces.
    [inv]/[res] are trace lengths just before the first and just after the
    last event of the operation, so [precedes a b = a.res <= b.inv]. *)

open Tsim.Ids

type op = {
  pid : Pid.t;
  label : string;
  arg : Value.t option;
  result : Value.t option;
  inv : int;
  res : int;
  uid : int;
  aborted : bool;
      (** the process crashed before responding: [res] is the crash
          position, [result] is unknowable *)
}

type t = op array

val precedes : op -> op -> bool
val concurrent : op -> op -> bool

val of_list : op list -> t
(** Sorts by interval and assigns dense uids. *)

val length : t -> int
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
