(* Information-flow reconstruction over a trace.

   Recomputes, from the event sequence alone, everything the paper's
   definitions derive from an execution: awareness sets (Definition 1),
   writer(v, E), Accessed(v, E), per-process status, and the criticality of
   every event (Definition 2). The machine tracks the same quantities
   online; tests cross-check the two. Analyses over *erased* executions
   must use this module, since criticality is relative to the execution
   containing the event. *)

open Tsim
open Execution
open Tsim.Ids

type summary = {
  aw : (Pid.t, Pidset.t) Hashtbl.t;  (* awareness sets after the trace *)
  writer : (Var.t, Pid.t) Hashtbl.t;  (* writer(v, E); absent = ⊥ *)
  writer_aw : (Var.t, Pidset.t) Hashtbl.t;
  accessed : (Var.t, Pidset.t) Hashtbl.t;  (* Accessed(v, E) *)
  status : (Pid.t, [ `Ncs | `Entry | `Exit ]) Hashtbl.t;
  critical : bool array;  (* criticality of each event, recomputed *)
  criticals_per_pid : (Pid.t, int) Hashtbl.t;
  fences_per_pid : (Pid.t, int) Hashtbl.t;  (* completed fences *)
  in_fence : (Pid.t, bool) Hashtbl.t;  (* mode(p, E) = write *)
}

let get_aw s p =
  Option.value ~default:(Pidset.singleton p) (Hashtbl.find_opt s.aw p)

let get_writer s v = Hashtbl.find_opt s.writer v
let get_accessed s v =
  Option.value ~default:Pidset.empty (Hashtbl.find_opt s.accessed v)
let get_status s p = Option.value ~default:`Ncs (Hashtbl.find_opt s.status p)
let get_criticals s p =
  Option.value ~default:0 (Hashtbl.find_opt s.criticals_per_pid p)
let get_fences s p =
  Option.value ~default:0 (Hashtbl.find_opt s.fences_per_pid p)
let get_mode s p =
  if Option.value ~default:false (Hashtbl.find_opt s.in_fence p) then `Write
  else `Read

let analyze (t : Trace.t) : summary =
  let layout = Trace.layout t in
  let events = Trace.events t in
  let n = Array.length events in
  let aw = Hashtbl.create 32 in
  let writer = Hashtbl.create 32 in
  let writer_aw = Hashtbl.create 32 in
  let accessed = Hashtbl.create 32 in
  let status = Hashtbl.create 32 in
  let critical = Array.make n false in
  let criticals_per_pid = Hashtbl.create 32 in
  let fences_per_pid = Hashtbl.create 32 in
  let in_fence = Hashtbl.create 32 in
  (* issue-time awareness snapshots, keyed by (pid, var); replaced when the
     buffered write is replaced *)
  let issue_aw : (Pid.t * Var.t, Pidset.t) Hashtbl.t = Hashtbl.create 32 in
  (* first-remote-read bookkeeping *)
  let remote_read : (Pid.t * Var.t, unit) Hashtbl.t = Hashtbl.create 32 in
  let my_aw p = Option.value ~default:(Pidset.singleton p) (Hashtbl.find_opt aw p) in
  let absorb p v =
    match Hashtbl.find_opt writer v with
    | None -> ()
    | Some q ->
        let waw =
          Option.value ~default:Pidset.empty (Hashtbl.find_opt writer_aw v)
        in
        Hashtbl.replace aw p (Pidset.add q (Pidset.union (my_aw p) waw))
  in
  let note_access p v =
    Hashtbl.replace accessed v
      (Pidset.add p
         (Option.value ~default:Pidset.empty (Hashtbl.find_opt accessed v)))
  in
  let mark_critical i p =
    critical.(i) <- true;
    Hashtbl.replace criticals_per_pid p
      (1 + Option.value ~default:0 (Hashtbl.find_opt criticals_per_pid p))
  in
  let is_remote p v = Layout.is_remote layout p v in
  Array.iteri
    (fun i (e : Event.t) ->
      let p = e.Event.pid in
      match e.Event.kind with
      | Event.Enter -> Hashtbl.replace status p `Entry
      | Event.Cs -> Hashtbl.replace status p `Exit
      | Event.Exit -> Hashtbl.replace status p `Ncs
      (* crash faults: the committed prefix already appeared as ordinary
         Commit_write events; the wipe itself resets section and fence
         state and is never critical *)
      | Event.Crash _ ->
          Hashtbl.replace status p `Ncs;
          Hashtbl.replace in_fence p false
      | Event.Recover -> ()
      (* abort faults: the process keeps its buffer and runs its cleanup
         section (still entry-side work), so only the fence mode resets
         here; the section flips back to NCS at Abort_done *)
      | Event.Abort -> Hashtbl.replace in_fence p false
      | Event.Abort_done -> Hashtbl.replace status p `Ncs
      | Event.Begin_fence _ -> Hashtbl.replace in_fence p true
      | Event.End_fence _ ->
          Hashtbl.replace in_fence p false;
          Hashtbl.replace fences_per_pid p
            (1 + Option.value ~default:0 (Hashtbl.find_opt fences_per_pid p))
      | Event.Read { src = Event.From_buffer; _ } -> ()
      | Event.Read { var = v; src = Event.From_cache | Event.From_memory; _ }
        ->
          let remote = is_remote p v in
          if remote && not (Hashtbl.mem remote_read (p, v)) then begin
            Hashtbl.replace remote_read (p, v) ();
            mark_critical i p
          end;
          absorb p v;
          note_access p v
      | Event.Issue_write { var = v; _ } ->
          Hashtbl.replace issue_aw (p, v) (my_aw p)
      | Event.Commit_write { var = v; _ } ->
          let remote = is_remote p v in
          let prev = Hashtbl.find_opt writer v in
          if remote && prev <> Some p then mark_critical i p;
          Hashtbl.replace writer v p;
          Hashtbl.replace writer_aw v
            (Option.value ~default:(my_aw p)
               (Hashtbl.find_opt issue_aw (p, v)));
          Hashtbl.remove issue_aw (p, v);
          note_access p v
      | Event.Cas_ev { var = v; success; _ } ->
          let remote = is_remote p v in
          let prev = Hashtbl.find_opt writer v in
          let first = remote && not (Hashtbl.mem remote_read (p, v)) in
          if remote then Hashtbl.replace remote_read (p, v) ();
          if first || (success && remote && prev <> Some p) then
            mark_critical i p;
          absorb p v;
          note_access p v;
          if success then begin
            Hashtbl.replace writer v p;
            Hashtbl.replace writer_aw v (my_aw p)
          end
      | Event.Faa_ev { var = v; _ } | Event.Swap_ev { var = v; _ } ->
          let remote = is_remote p v in
          let prev = Hashtbl.find_opt writer v in
          let first = remote && not (Hashtbl.mem remote_read (p, v)) in
          if remote then Hashtbl.replace remote_read (p, v) ();
          if first || (remote && prev <> Some p) then mark_critical i p;
          absorb p v;
          note_access p v;
          Hashtbl.replace writer v p;
          Hashtbl.replace writer_aw v (my_aw p))
    events;
  { aw; writer; writer_aw; accessed; status; critical; criticals_per_pid;
    fences_per_pid; in_fence }

(* Cross-check the recomputed criticality flags against the online flags
   recorded in the events; returns the indices that disagree. *)
let criticality_disagreements (t : Trace.t) (s : summary) =
  let bad = ref [] in
  Array.iteri
    (fun i (e : Event.t) ->
      if e.Event.critical <> s.critical.(i) then bad := i :: !bad)
    (Trace.events t);
  List.rev !bad
