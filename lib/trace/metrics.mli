(** Per-process / per-passage cost aggregation recomputed from traces
    alone, cross-checkable against the machine's online counters. *)

open Tsim.Ids

type per_passage = {
  mp_pid : Pid.t;
  mp_index : int;
  mp_events : int;
  mp_rmrs : int;
  mp_fences : int;
  mp_criticals : int;
}

type per_process = {
  pp_pid : Pid.t;
  pp_events : int;
  pp_rmrs : int;
  pp_fences : int;
  pp_criticals : int;
  pp_passages : int;
  pp_aborts : int;  (** acquisition attempts cancelled at a wait point *)
  pp_passage_log : per_passage list;
}

type t = {
  processes : per_process list;
  total_events : int;
  total_rmrs : int;
  total_fences : int;
  total_criticals : int;
  total_aborts : int;
}

val compute : Trace.t -> t
val find : t -> Pid.t -> per_process option

val cross_check : Tsim.Machine.t -> t -> string list
(** Compare a trace-recomputed aggregation against the machine's online
    counters: per-process RMR / fence / critical / passage totals and
    the per-passage log. Returns human-readable mismatch descriptions —
    empty means the two accountings agree exactly (the "cross-checkable"
    contract above, enforced by a qcheck property in suite_obs and by
    the CLI [stats] command). The machine must have recorded the trace
    [t] was computed from. *)

val pp : Format.formatter -> t -> unit
