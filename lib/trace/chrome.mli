(** Chrome trace-event export of machine execution traces.

    Renders a recorded {!Trace.t} in the [chrome://tracing] / Perfetto
    "JSON array" format: one timeline lane (tid) per simulated process,
    passages and fences as nested duration spans, individual memory
    events as instants, and cumulative per-process RMR / critical-event
    counter tracks. Timestamps are virtual — one microsecond per trace
    position — so the export of a replayed schedule is deterministic and
    byte-stable (pinned by a golden file in the test corpus). *)

val events : ?name:string -> Trace.t -> Obs.Json.t list
(** The trace events, metadata first. [name] labels the process lane
    (default ["price_adaptive"]). *)

val to_string : ?name:string -> Trace.t -> string
(** The complete file: a JSON array, one trace event per line. *)

val export : ?name:string -> out_channel -> Trace.t -> unit
