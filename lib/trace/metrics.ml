(* Per-process, per-passage cost aggregation from traces.

   The machine keeps these counters online; this module recomputes them
   from the recorded events alone, so (a) archived traces can be analyzed
   without the machine and (b) the online accounting is cross-checkable
   (tested in suite_trace). *)

open Tsim
open Tsim.Ids

type per_passage = {
  mp_pid : Pid.t;
  mp_index : int;  (* 0-based passage number of this process *)
  mp_events : int;
  mp_rmrs : int;
  mp_fences : int;
  mp_criticals : int;
}

type per_process = {
  pp_pid : Pid.t;
  pp_events : int;
  pp_rmrs : int;
  pp_fences : int;
  pp_criticals : int;
  pp_passages : int;
  pp_aborts : int;  (* acquisition attempts cancelled at a wait point *)
  pp_passage_log : per_passage list;
}

type t = {
  processes : per_process list;
  total_events : int;
  total_rmrs : int;
  total_fences : int;
  total_criticals : int;
  total_aborts : int;
}

let compute (tr : Trace.t) : t =
  let tbl : (Pid.t, per_process) Hashtbl.t = Hashtbl.create 16 in
  let cur : (Pid.t, per_passage) Hashtbl.t = Hashtbl.create 16 in
  let get p =
    match Hashtbl.find_opt tbl p with
    | Some x -> x
    | None ->
        let x =
          { pp_pid = p; pp_events = 0; pp_rmrs = 0; pp_fences = 0;
            pp_criticals = 0; pp_passages = 0; pp_aborts = 0;
            pp_passage_log = [] }
        in
        Hashtbl.replace tbl p x;
        x
  in
  Trace.iter
    (fun (e : Event.t) ->
      let p = e.Event.pid in
      let pp = get p in
      let rmr = if e.Event.rmr then 1 else 0 in
      let crit = if e.Event.critical then 1 else 0 in
      let fence =
        match e.Event.kind with Event.End_fence _ -> 1 | _ -> 0
      in
      let abort = match e.Event.kind with Event.Abort -> 1 | _ -> 0 in
      Hashtbl.replace tbl p
        { pp with pp_events = pp.pp_events + 1; pp_rmrs = pp.pp_rmrs + rmr;
          pp_fences = pp.pp_fences + fence;
          pp_criticals = pp.pp_criticals + crit;
          pp_aborts = pp.pp_aborts + abort };
      (match e.Event.kind with
      | Event.Enter ->
          Hashtbl.replace cur p
            { mp_pid = p; mp_index = (get p).pp_passages; mp_events = 0;
              mp_rmrs = 0; mp_fences = 0; mp_criticals = 0 }
      | Event.Exit -> (
          match Hashtbl.find_opt cur p with
          | Some mp ->
              Hashtbl.remove cur p;
              let pp = get p in
              Hashtbl.replace tbl p
                { pp with pp_passages = pp.pp_passages + 1;
                  pp_passage_log = pp.pp_passage_log @ [ mp ] }
          | None -> ())
      | _ -> (
          match Hashtbl.find_opt cur p with
          | Some mp ->
              Hashtbl.replace cur p
                { mp with mp_events = mp.mp_events + 1;
                  mp_rmrs = mp.mp_rmrs + rmr; mp_fences = mp.mp_fences + fence;
                  mp_criticals = mp.mp_criticals + crit }
          | None -> ())))
    tr;
  let processes =
    Hashtbl.fold (fun _ pp acc -> pp :: acc) tbl []
    |> List.sort (fun a b -> compare a.pp_pid b.pp_pid)
  in
  {
    processes;
    total_events = List.fold_left (fun a p -> a + p.pp_events) 0 processes;
    total_rmrs = List.fold_left (fun a p -> a + p.pp_rmrs) 0 processes;
    total_fences = List.fold_left (fun a p -> a + p.pp_fences) 0 processes;
    total_criticals =
      List.fold_left (fun a p -> a + p.pp_criticals) 0 processes;
    total_aborts = List.fold_left (fun a p -> a + p.pp_aborts) 0 processes;
  }

let find t p = List.find_opt (fun pp -> Pid.equal pp.pp_pid p) t.processes

(* Online/offline agreement. The machine bumps its counters as events
   execute; [compute] re-derives the same numbers from the recorded
   events alone. Any disagreement means either the trace is not the one
   this machine produced, or an instrumentation bug — both worth a
   loud, specific message. *)
let cross_check (m : Machine.t) (t : t) : string list =
  let fails = ref [] in
  let failf fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  let zero p =
    { pp_pid = p; pp_events = 0; pp_rmrs = 0; pp_fences = 0; pp_criticals = 0;
      pp_passages = 0; pp_aborts = 0; pp_passage_log = [] }
  in
  for p = 0 to Machine.n_procs m - 1 do
    let pp = Option.value ~default:(zero p) (find t p) in
    let check name online offline =
      if online <> offline then
        failf "p%d %s: online %d <> trace %d" p name online offline
    in
    check "rmrs" (Machine.rmrs m p) pp.pp_rmrs;
    check "fences" (Machine.fences_completed m p) pp.pp_fences;
    check "criticals" (Machine.criticals m p) pp.pp_criticals;
    check "passages" (Machine.passages m p) pp.pp_passages;
    check "aborts" (Machine.aborts m p) pp.pp_aborts;
    let log = Machine.passage_log m p in
    if Vec.length log <> List.length pp.pp_passage_log then
      failf "p%d passage log length: online %d <> trace %d" p
        (Vec.length log)
        (List.length pp.pp_passage_log)
    else
      List.iteri
        (fun i (mp : per_passage) ->
          let (s : Machine.passage_stats) = Vec.get log i in
          let check name online offline =
            if online <> offline then
              failf "p%d passage %d %s: online %d <> trace %d" p i name
                online offline
          in
          check "rmrs" s.Machine.p_rmrs mp.mp_rmrs;
          check "fences" s.Machine.p_fences mp.mp_fences;
          check "criticals" s.Machine.p_criticals mp.mp_criticals)
        pp.pp_passage_log
  done;
  List.rev !fails

let pp fmt (t : t) =
  Format.fprintf fmt
    "events %d, rmrs %d, fences %d, criticals %d, aborts %d over %d \
     processes@."
    t.total_events t.total_rmrs t.total_fences t.total_criticals
    t.total_aborts
    (List.length t.processes);
  List.iter
    (fun pp_ ->
      Format.fprintf fmt
        "  %a: events %d rmrs %d fences %d criticals %d passages %d%s@."
        Pid.pp pp_.pp_pid pp_.pp_events pp_.pp_rmrs pp_.pp_fences
        pp_.pp_criticals pp_.pp_passages
        (if pp_.pp_aborts > 0 then
           Printf.sprintf " aborts %d" pp_.pp_aborts
         else ""))
    t.processes
