(* ASCII swimlane rendering of executions.

   One column per process, one row per event — the format lower-bound
   papers draw their executions in. Events show their operation and
   annotate remoteness ($= RMR, ! = critical); fences bracket their
   commit runs. Used by the CLI's [show] command and handy when debugging
   adversary schedules. *)

open Tsim
open Tsim.Ids

let cell_width = 16

let short_kind layout (e : Event.t) =
  let vname v =
    let s = Layout.name layout v in
    if String.length s <= 8 then s else String.sub s 0 8
  in
  match e.Event.kind with
  | Event.Enter -> "ENTER"
  | Event.Cs -> "*CS*"
  | Event.Exit -> "EXIT"
  | Event.Read { var; value; src = Event.From_buffer } ->
      Printf.sprintf "r %s>%d(b)" (vname var) value
  | Event.Read { var; value; _ } ->
      Printf.sprintf "r %s>%d" (vname var) value
  | Event.Issue_write { var; value } ->
      Printf.sprintf "w %s:=%d" (vname var) value
  | Event.Commit_write { var; value } ->
      Printf.sprintf "C %s:=%d" (vname var) value
  | Event.Begin_fence { implicit } -> if implicit then "[rmw" else "[fence"
  | Event.End_fence _ -> "]"
  | Event.Cas_ev { var; success; _ } ->
      Printf.sprintf "cas %s %s" (vname var) (if success then "ok" else "x")
  | Event.Faa_ev { var; observed; _ } ->
      Printf.sprintf "faa %s>%d" (vname var) observed
  | Event.Swap_ev { var; observed; _ } ->
      Printf.sprintf "swp %s>%d" (vname var) observed
  | Event.Crash { dropped; _ } -> Printf.sprintf "CRASH -%dw" dropped
  | Event.Recover -> "RECOVER"
  | Event.Abort -> "ABORT"
  | Event.Abort_done -> "ABORTED"

let pad s =
  let s = if String.length s > cell_width then String.sub s 0 cell_width else s in
  s ^ String.make (cell_width - String.length s) ' '

let to_string ?(limit = max_int) (t : Trace.t) =
  let layout = Trace.layout t in
  let pids = Pidset.elements (Trace.participants t) in
  let col = Hashtbl.create 8 in
  List.iteri (fun i p -> Hashtbl.replace col p i) pids;
  let ncols = List.length pids in
  let buf = Buffer.create 4096 in
  (* header *)
  Buffer.add_string buf "  seq | ";
  List.iter (fun p -> Buffer.add_string buf (pad (Pid.to_string p))) pids;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    ("------+-" ^ String.make (ncols * cell_width) '-' ^ "\n");
  let shown = ref 0 in
  (try
     Trace.iter
       (fun (e : Event.t) ->
         if !shown >= limit then raise Exit;
         incr shown;
         let c = Hashtbl.find col e.Event.pid in
         Buffer.add_string buf (Printf.sprintf "%5d | " e.Event.seq);
         for i = 0 to ncols - 1 do
           if i = c then
             Buffer.add_string buf
               (pad
                  (short_kind layout e
                  ^ (if e.Event.rmr then "$" else "")
                  ^ if e.Event.critical then "!" else ""))
           else Buffer.add_string buf (pad "")
         done;
         Buffer.add_char buf '\n')
       t
   with Exit -> Buffer.add_string buf "  ...\n");
  Buffer.contents buf

let print ?limit t = print_string (to_string ?limit t)
