(* Chrome trace-event export of execution traces.

   Lane model: pid 0 is the whole machine; each simulated process is a
   tid. Spans: one "passage" per Enter..Exit window (closed early by a
   crash, since a crashed passage never Exits) with "fence" spans nested
   inside; everything else is an instant. Two counter tracks accumulate
   the paper's cost measures (RMRs, critical events) per process as the
   trace advances, which is what makes the export a cost-accounting
   visualization rather than a plain event dump.

   Timestamps are the trace positions themselves (1 event = 1 µs of
   virtual time): deterministic, so replay exports are byte-stable. *)

open Tsim

let ev = Obs.Sink.chrome_event (* fixed field order, byte-stable *)
let obj fields = Obs.Json.Obj fields

(* metadata events carry no cat/ts in the wild, but including them keeps
   every array element uniform (ph/ts/pid present — the shape the tests
   validate) *)
let meta ~name ~pid ~tid args =
  ev ~name ~cat:"__metadata" ~ph:"M" ~ts:0 ~pid ~tid [ ("args", obj args) ]

let events ?(name = "price_adaptive") (tr : Trace.t) : Obs.Json.t list =
  let layout = Trace.layout tr in
  let n =
    1 + Trace.fold (fun acc e -> max acc e.Event.pid) 0 tr
  in
  let out = ref [] in
  let put j = out := j :: !out in
  (* metadata: name the process lane and one thread lane per pid *)
  put (meta ~name:"process_name" ~pid:0 ~tid:0
         [ ("name", Obs.Json.String name) ]);
  for p = 0 to n - 1 do
    put (meta ~name:"thread_name" ~pid:0 ~tid:p
           [ ("name", Obs.Json.String (Printf.sprintf "p%d" p)) ])
  done;
  let rmrs = Array.make n 0 and crits = Array.make n 0 in
  let in_passage = Array.make n false and in_fence = Array.make n false in
  let counter_args counts =
    List.init n (fun p -> (Printf.sprintf "p%d" p, Obs.Json.Int counts.(p)))
  in
  let vname v = Layout.name layout v in
  let flags (e : Event.t) =
    [
      ("var", Obs.Json.Int (Option.value ~default:(-1) (Event.accessed_var e)));
      ("remote", Obs.Json.Bool e.Event.remote);
      ("rmr", Obs.Json.Bool e.Event.rmr);
      ("critical", Obs.Json.Bool e.Event.critical);
    ]
  in
  let instant ~ts ~tid nm args =
    put (ev ~name:nm ~cat:"event" ~ph:"i" ~ts ~pid:0 ~tid
           (("s", Obs.Json.String "t") :: [ ("args", obj args) ]))
  in
  let last_ts = ref 0 in
  Trace.iteri
    (fun i (e : Event.t) ->
      let ts = i and p = e.Event.pid in
      last_ts := ts;
      match e.Event.kind with
      | Event.Enter ->
          in_passage.(p) <- true;
          put (ev ~name:"passage" ~cat:"passage" ~ph:"B" ~ts ~pid:0 ~tid:p
                 [ ("args", obj []) ])
      | Event.Exit ->
          in_passage.(p) <- false;
          put (ev ~name:"passage" ~cat:"passage" ~ph:"E" ~ts ~pid:0 ~tid:p [])
      | Event.Cs ->
          (if e.Event.critical then begin
             crits.(p) <- crits.(p) + 1;
             put (ev ~name:"criticals" ~cat:"cost" ~ph:"C" ~ts ~pid:0 ~tid:0
                    [ ("args", obj (counter_args crits)) ])
           end);
          instant ~ts ~tid:p "cs" (flags e)
      | Event.Begin_fence { implicit } ->
          in_fence.(p) <- true;
          put (ev ~name:"fence" ~cat:"fence" ~ph:"B" ~ts ~pid:0 ~tid:p
                 [ ("args", obj [ ("implicit", Obs.Json.Bool implicit) ]) ])
      | Event.End_fence _ ->
          in_fence.(p) <- false;
          put (ev ~name:"fence" ~cat:"fence" ~ph:"E" ~ts ~pid:0 ~tid:p [])
      | Event.Crash { committed; dropped } ->
          if in_fence.(p) then begin
            in_fence.(p) <- false;
            put (ev ~name:"fence" ~cat:"fence" ~ph:"E" ~ts ~pid:0 ~tid:p [])
          end;
          if in_passage.(p) then begin
            in_passage.(p) <- false;
            put
              (ev ~name:"passage" ~cat:"passage" ~ph:"E" ~ts ~pid:0 ~tid:p [])
          end;
          instant ~ts ~tid:p "crash"
            [
              ("committed", Obs.Json.Int committed);
              ("dropped", Obs.Json.Int dropped);
            ]
      | Event.Recover -> instant ~ts ~tid:p "recover" []
      | Event.Abort ->
          (* the passage span stays open through the cleanup section; only
             an in-progress fence drain is cut short by the fault *)
          if in_fence.(p) then begin
            in_fence.(p) <- false;
            put (ev ~name:"fence" ~cat:"fence" ~ph:"E" ~ts ~pid:0 ~tid:p [])
          end;
          instant ~ts ~tid:p "abort" []
      | Event.Abort_done ->
          if in_passage.(p) then begin
            in_passage.(p) <- false;
            put
              (ev ~name:"passage" ~cat:"passage" ~ph:"E" ~ts ~pid:0 ~tid:p [])
          end;
          instant ~ts ~tid:p "abort-done" []
      | kind ->
          let nm =
            match kind with
            | Event.Read { var; src; _ } ->
                Printf.sprintf "read %s%s" (vname var)
                  (match src with Event.From_buffer -> " (fwd)" | _ -> "")
            | Event.Issue_write { var; _ } ->
                Printf.sprintf "issue %s" (vname var)
            | Event.Commit_write { var; _ } ->
                Printf.sprintf "commit %s" (vname var)
            | Event.Cas_ev { var; success; _ } ->
                Printf.sprintf "cas %s %s" (vname var)
                  (if success then "ok" else "fail")
            | Event.Faa_ev { var; _ } -> Printf.sprintf "faa %s" (vname var)
            | Event.Swap_ev { var; _ } -> Printf.sprintf "swap %s" (vname var)
            | _ -> Event.kind_tag kind
          in
          if e.Event.rmr then begin
            rmrs.(p) <- rmrs.(p) + 1;
            put (ev ~name:"rmrs" ~cat:"cost" ~ph:"C" ~ts ~pid:0 ~tid:0
                   [ ("args", obj (counter_args rmrs)) ])
          end;
          if e.Event.critical then begin
            crits.(p) <- crits.(p) + 1;
            put (ev ~name:"criticals" ~cat:"cost" ~ph:"C" ~ts ~pid:0 ~tid:0
                   [ ("args", obj (counter_args crits)) ])
          end;
          instant ~ts ~tid:p nm (flags e))
    tr;
  (* close spans left open by an unfinished trace *)
  let ts = !last_ts in
  for p = 0 to n - 1 do
    if in_fence.(p) then
      put (ev ~name:"fence" ~cat:"fence" ~ph:"E" ~ts ~pid:0 ~tid:p []);
    if in_passage.(p) then
      put (ev ~name:"passage" ~cat:"passage" ~ph:"E" ~ts ~pid:0 ~tid:p [])
  done;
  List.rev !out

let to_string ?name tr =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i j ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (Obs.Json.to_string j))
    (events ?name tr);
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let export ?name oc tr = output_string oc (to_string ?name tr)
