(* Textual trace serialization.

   Executions are research artifacts: this format makes them diffable,
   archivable and loadable without the machine that produced them. One
   header line per variable (name, initial value, owner), then one line
   per event. Round-trips exactly (tested by property). *)

open Tsim

let src_tag = function
  | Event.From_buffer -> "buf"
  | Event.From_cache -> "cache"
  | Event.From_memory -> "mem"

let src_of_tag = function
  | "buf" -> Event.From_buffer
  | "cache" -> Event.From_cache
  | "mem" -> Event.From_memory
  | s -> failwith ("Serial: bad read source " ^ s)

let kind_to_string = function
  | Event.Enter -> "enter"
  | Event.Cs -> "cs"
  | Event.Exit -> "exit"
  | Event.Read { var; value; src } ->
      Printf.sprintf "read %d %d %s" var value (src_tag src)
  | Event.Issue_write { var; value } -> Printf.sprintf "issue %d %d" var value
  | Event.Commit_write { var; value } ->
      Printf.sprintf "commit %d %d" var value
  | Event.Begin_fence { implicit } ->
      Printf.sprintf "bfence %b" implicit
  | Event.End_fence { implicit } -> Printf.sprintf "efence %b" implicit
  | Event.Cas_ev { var; expected; desired; observed; success } ->
      Printf.sprintf "cas %d %d %d %d %b" var expected desired observed
        success
  | Event.Faa_ev { var; delta; observed } ->
      Printf.sprintf "faa %d %d %d" var delta observed
  | Event.Swap_ev { var; stored; observed } ->
      Printf.sprintf "swap %d %d %d" var stored observed
  | Event.Crash { committed; dropped } ->
      Printf.sprintf "crash %d %d" committed dropped
  | Event.Recover -> "recover"
  | Event.Abort -> "abort"
  | Event.Abort_done -> "abort-done"

let kind_of_tokens = function
  | [ "enter" ] -> Event.Enter
  | [ "cs" ] -> Event.Cs
  | [ "exit" ] -> Event.Exit
  | [ "read"; v; x; s ] ->
      Event.Read
        { var = int_of_string v; value = int_of_string x;
          src = src_of_tag s }
  | [ "issue"; v; x ] ->
      Event.Issue_write { var = int_of_string v; value = int_of_string x }
  | [ "commit"; v; x ] ->
      Event.Commit_write { var = int_of_string v; value = int_of_string x }
  | [ "bfence"; b ] -> Event.Begin_fence { implicit = bool_of_string b }
  | [ "efence"; b ] -> Event.End_fence { implicit = bool_of_string b }
  | [ "cas"; v; e; d; o; s ] ->
      Event.Cas_ev
        { var = int_of_string v; expected = int_of_string e;
          desired = int_of_string d; observed = int_of_string o;
          success = bool_of_string s }
  | [ "faa"; v; d; o ] ->
      Event.Faa_ev
        { var = int_of_string v; delta = int_of_string d;
          observed = int_of_string o }
  | [ "swap"; v; x; o ] ->
      Event.Swap_ev
        { var = int_of_string v; stored = int_of_string x;
          observed = int_of_string o }
  | [ "crash"; c; d ] ->
      Event.Crash { committed = int_of_string c; dropped = int_of_string d }
  | [ "recover" ] -> Event.Recover
  | [ "abort" ] -> Event.Abort
  | [ "abort-done" ] -> Event.Abort_done
  | toks -> failwith ("Serial: bad event line: " ^ String.concat " " toks)

let event_to_line (e : Event.t) =
  Printf.sprintf "%d %d %b %b %b %s" e.Event.seq e.Event.pid e.Event.remote
    e.Event.rmr e.Event.critical
    (kind_to_string e.Event.kind)

let event_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | seq :: pid :: remote :: rmr :: critical :: rest ->
      {
        Event.seq = int_of_string seq;
        pid = int_of_string pid;
        remote = bool_of_string remote;
        rmr = bool_of_string rmr;
        critical = bool_of_string critical;
        kind = kind_of_tokens rest;
      }
  | _ -> failwith ("Serial: bad event line: " ^ line)

(* Variable names may contain spaces-free identifiers only; layout lines
   are "var <id> <init> <owner|-> <name>". *)
let to_string (t : Trace.t) =
  let buf = Buffer.create 4096 in
  let layout = Trace.layout t in
  Buffer.add_string buf
    (Printf.sprintf "trace v1 vars %d events %d\n" (Layout.size layout)
       (Trace.length t));
  Layout.iter layout (fun v info ->
      Buffer.add_string buf
        (Printf.sprintf "var %d %d %s %s\n" v info.Layout.init
           (match info.Layout.owner with
           | Some p -> string_of_int p
           | None -> "-")
           info.Layout.name));
  Trace.iter
    (fun e ->
      Buffer.add_string buf (event_to_line e);
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let of_string s =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  match lines with
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ "trace"; "v1"; "vars"; nv; "events"; ne ] ->
          let nv = int_of_string nv and ne = int_of_string ne in
          let layout = Layout.create () in
          let var_lines = List.filteri (fun i _ -> i < nv) rest in
          let ev_lines = List.filteri (fun i _ -> i >= nv) rest in
          List.iter
            (fun line ->
              match String.split_on_char ' ' line with
              | "var" :: _id :: init :: owner :: name_parts ->
                  let owner =
                    if owner = "-" then None else Some (int_of_string owner)
                  in
                  ignore
                    (Layout.var layout ?owner ~init:(int_of_string init)
                       (String.concat " " name_parts))
              | _ -> failwith ("Serial: bad var line: " ^ line))
            var_lines;
          let events = Array.of_list (List.map event_of_line ev_lines) in
          if Array.length events <> ne then
            failwith "Serial: event count mismatch";
          Trace.of_events layout events
      | _ -> failwith "Serial: bad header")
  | [] -> failwith "Serial: empty input"

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
