(* Public umbrella for the reproduction of
   "The Price of being Adaptive" (Ben-Baruch & Hendler, PODC 2015).

   Downstream users normally need only this module:

   {[
     open Price_adaptive
     let lock = Locks.Ticket.make ~n:8
     let _m, stats = Locks.Harness.run_contended lock ~n:8 ~k:4
   ]}

   The sub-libraries remain individually usable (tsim, execution,
   analysis, graphs, locks, objects, adversary, bounds). *)

module Tsim = struct
  module Ids = Tsim.Ids
  module Prog = Tsim.Prog
  module Layout = Tsim.Layout
  module Event = Tsim.Event
  module Wbuf = Tsim.Wbuf
  module Cache = Tsim.Cache
  module Memmodel = Tsim.Memmodel
  module Config = Tsim.Config
  module Machine = Tsim.Machine
  module Sched = Tsim.Sched
  module Rng = Tsim.Rng
  module Vec = Tsim.Vec
end

module Execution = struct
  module Trace = Execution.Trace
  module Erasure = Execution.Erasure
  module Serial = Execution.Serial
  module Metrics = Execution.Metrics
  module Render = Execution.Render
  module Chrome = Execution.Chrome
end

module Obs = struct
  module Json = Obs.Json
  module Histogram = Obs.Histogram
  module Event = Obs.Event
  module Sink = Obs.Sink
  module Telemetry = Obs.Telemetry
  module Estimator = Obs.Estimator
  module Profile = Obs.Profile
end

module Analysis = struct
  module Flow = Analysis.Flow
  module Inset = Analysis.Inset
  module Ordered = Analysis.Ordered
  module Waits = Analysis.Waits
end

module Graphs = struct
  module Graph = Graphs.Graph
  module Turan = Graphs.Turan
end

module Locks = struct
  module Lock_intf = Locks.Lock_intf
  module Harness = Locks.Harness
  module Ticket = Locks.Ticket
  module Tas = Locks.Tas
  module Mcs = Locks.Mcs
  module Clh = Locks.Clh
  module Anderson = Locks.Anderson
  module Bakery = Locks.Bakery
  module Filter = Locks.Filter
  module Tournament = Locks.Tournament
  module Dekker = Locks.Dekker
  module Burns_lamport = Locks.Burns_lamport
  module Fastpath = Locks.Fastpath
  module Adaptive_list = Locks.Adaptive_list
  module Adaptive_tree = Locks.Adaptive_tree
  module Cascade = Locks.Cascade
  module Peterson_kit = Locks.Peterson_kit
  module Splitter = Locks.Splitter
  module Zoo = Locks.Zoo
end

module Objects = struct
  module Obj_intf = Objects.Obj_intf
  module Counter = Objects.Counter
  module Ostack = Objects.Ostack
  module Oqueue = Objects.Oqueue
  module Mutex_from_object = Objects.Mutex_from_object
  module Snapshot = Objects.Snapshot
  module Barrier = Objects.Barrier
  module Monitor = Objects.Monitor
end

module Adversary = struct
  module Report = Adversary.Report
  module Construction = Adversary.Construction
  module Witness = Adversary.Witness
end

module Lincheck = struct
  module History = Lincheck.History
  module Spec = Lincheck.Spec
  module Checker = Lincheck.Checker
  module Workload = Lincheck.Workload
end

module Mcheck = struct
  module Explore = Mcheck.Explore
end

module Campaign = struct
  module Cell = Campaign.Cell
  module Cache = Campaign.Cache
  module Bracket = Campaign.Bracket
  module Runner = Campaign.Runner
  module Driver = Campaign.Driver
end

module Bounds = struct
  module Logspace = Bounds.Logspace
  module Adaptivity = Bounds.Adaptivity
  module Theorem1 = Bounds.Theorem1
  module Theorem3 = Bounds.Theorem3
  module Corollaries = Bounds.Corollaries
  module Pso = Bounds.Pso
end
